"""SPSC shared-memory ring transport for co-hosted worker pairs.

DLion's premise is that micro-clouds pair fast intra-cloud LANs with
scarce WAN bandwidth (§2); the live backend mirrors that asymmetry by
giving LAN-grade links a cheaper lane than a TCP socket: one
single-producer/single-consumer byte ring in a
:mod:`multiprocessing.shared_memory` segment per *directed* worker
pair, carrying the data channel's wire frames without any syscall per
frame. The control channel (heartbeats, death detection, Bye) always
stays on TCP, so liveness semantics are identical on both lanes, and
the token-bucket shaper still paces writers — the ring changes the
transport cost of a frame, never its modelled bandwidth.

Layout of a segment (created by the *receiver*, attached by the
sender)::

    0    head  u64   consumer position (monotonic byte counter)
    64   tail  u64   producer position (monotonic byte counter)
    96   magic u32   0x444C5348 ("DLSH")
    104  cap   u64   data region size in bytes
    128  data  [cap] length-prefixed records

Records are ``u32 length | payload`` and never wrap: when a record
does not fit in the space left before the edge, the producer writes a
``0xFFFFFFFF`` skip sentinel (or, with fewer than 4 bytes left, both
sides skip the sliver implicitly) and starts the record at offset 0.
Head and tail live on separate cache lines and are written with single
aligned 8-byte stores after the payload bytes — the store-ordering
this relies on holds on x86-64 and on AArch64's total-store-ordered
regions as exercised by CPython's memcpy-based buffer writes; this is
the same practical assumption every Python shm ring makes.

``multiprocessing.resource_tracker`` on Python < 3.13 registers a
segment on *attach* as well as create and unlinks everything it knows
at process exit (bpo-38119) — which would tear a live ring out from
under the other process; and because one tracker daemon serves the
whole process tree, unregistering after the fact races the other
side's registration. Ring segments are therefore never registered at
all (:func:`_untracked` patches ``register`` around the
``SharedMemory`` constructor); the mesh unlinks rings it created at
close, and the live engine sweeps any survivors (crashed children)
after the run.
"""

from __future__ import annotations

import contextlib
import struct
import threading
import time

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = ["ShmRing", "ShmRingError", "shm_available", "ring_name", "sweep_ring"]

_OFF_HEAD = 0
_OFF_TAIL = 64
_OFF_MAGIC = 96
_OFF_CAP = 104
_OFF_DATA = 128

_MAGIC = 0x444C5348  # "DLSH"
_SKIP = 0xFFFFFFFF  # wrap sentinel: no record crosses the edge

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


class ShmRingError(RuntimeError):
    """Raised for malformed segments or records too large for the ring."""


def shm_available() -> bool:
    """Whether POSIX shared memory is usable on this platform."""
    return _shared_memory is not None


def ring_name(token: str, src: int, dst: int) -> str:
    """The canonical segment name for the directed pair ``src -> dst``.

    ``token`` is a per-run nonce the supervisor generates, so stale
    segments from a previous (crashed) run can never be mistaken for a
    live ring.
    """
    return f"dlion_{token}_{src}_{dst}"


class ShmRing:
    """One directed SPSC byte ring over a shared-memory segment.

    Exactly one process produces (:meth:`push_many`) and exactly one
    consumes (:meth:`pop_all`); the mesh guarantees that by giving every
    directed pair its own ring.
    """

    def __init__(self, shm, capacity: int, *, created: bool):
        self._shm = shm
        self._buf = shm.buf
        self.capacity = capacity
        self.created = created
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, name: str, capacity: int = 1 << 20) -> "ShmRing":
        """Create (as the consumer) a fresh ring segment named ``name``."""
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise ShmRingError("shared memory is not available on this platform")
        if capacity < 4096:
            raise ValueError("ring capacity must be >= 4096 bytes")
        with _untracked():
            shm = _shared_memory.SharedMemory(
                name=name, create=True, size=_OFF_DATA + capacity
            )
        buf = shm.buf
        _U64.pack_into(buf, _OFF_HEAD, 0)
        _U64.pack_into(buf, _OFF_TAIL, 0)
        _U64.pack_into(buf, _OFF_CAP, capacity)
        _U32.pack_into(buf, _OFF_MAGIC, _MAGIC)
        return cls(shm, capacity, created=True)

    @classmethod
    def attach(cls, name: str, *, timeout_s: float = 5.0) -> "ShmRing":
        """Attach (as the producer) to a ring the consumer created.

        Retries until ``timeout_s``: the peer may still be binding its
        mesh when our connect phase starts.
        """
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise ShmRingError("shared memory is not available on this platform")
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                with _untracked():
                    shm = _shared_memory.SharedMemory(name=name)
                break
            except FileNotFoundError:
                if time.monotonic() >= deadline:
                    raise ShmRingError(f"ring {name!r} never appeared") from None
                time.sleep(0.01)
        buf = shm.buf
        (magic,) = _U32.unpack_from(buf, _OFF_MAGIC)
        if magic != _MAGIC:
            shm.close()
            raise ShmRingError(f"segment {name!r} is not a DLion ring")
        (capacity,) = _U64.unpack_from(buf, _OFF_CAP)
        return cls(shm, int(capacity), created=False)

    def close(self) -> None:
        """Detach; the creating side also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        self._buf = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray exported view
            return
        if self.created:
            try:
                with _untracked():
                    self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already swept
                pass

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def push_many(self, frames) -> bool:
        """Append every frame (bytes-like) as one record each, then
        publish the tail once. All-or-nothing: returns ``False`` —
        writing nothing — when the batch does not fit (ring full means
        the consumer is behind; callers back off and retry)."""
        if self._closed:
            return False
        buf = self._buf
        cap = self.capacity
        (head,) = _U64.unpack_from(buf, _OFF_HEAD)
        (tail,) = _U64.unpack_from(buf, _OFF_TAIL)
        # Dry run: records never wrap, so account for edge padding.
        need = 0
        pos = tail % cap
        for frame in frames:
            n = len(frame)
            if 4 + n > cap - 8:
                raise ShmRingError(
                    f"frame of {n} bytes exceeds ring capacity {cap}"
                )
            contig = cap - pos
            if contig < 4 + n:
                need += contig  # skip sliver / sentinel pad
                pos = 0
            need += 4 + n
            pos = (pos + 4 + n) % cap
        if need > cap - (tail - head):
            return False
        # Commit: payload bytes first, tail published last.
        pos = tail % cap
        for frame in frames:
            n = len(frame)
            contig = cap - pos
            if contig < 4 + n:
                if contig >= 4:
                    _U32.pack_into(buf, _OFF_DATA + pos, _SKIP)
                tail += contig
                pos = 0
            _U32.pack_into(buf, _OFF_DATA + pos, n)
            start = _OFF_DATA + pos + 4
            buf[start:start + n] = bytes(frame) if not isinstance(
                frame, (bytes, bytearray, memoryview)
            ) else frame
            tail += 4 + n
            pos = (pos + 4 + n) % cap
        _U64.pack_into(buf, _OFF_TAIL, tail)
        return True

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def pop_all(self, max_records: int = 1024) -> list[bytes]:
        """Drain up to ``max_records`` records, advancing head once."""
        if self._closed:
            return []
        buf = self._buf
        cap = self.capacity
        (head,) = _U64.unpack_from(buf, _OFF_HEAD)
        (tail,) = _U64.unpack_from(buf, _OFF_TAIL)
        out: list[bytes] = []
        while head != tail and len(out) < max_records:
            pos = head % cap
            contig = cap - pos
            if contig < 4:
                head += contig
                continue
            (n,) = _U32.unpack_from(buf, _OFF_DATA + pos)
            if n == _SKIP:
                head += contig
                continue
            if 4 + n > cap or head + 4 + n > tail:
                raise ShmRingError("corrupt ring record")
            start = _OFF_DATA + pos + 4
            out.append(bytes(buf[start:start + n]))
            head += 4 + n
        if out:
            _U64.pack_into(buf, _OFF_HEAD, head)
        return out

    def pending_bytes(self) -> int:
        """Unconsumed bytes in the ring (records + padding)."""
        if self._closed:
            return 0
        (head,) = _U64.unpack_from(self._buf, _OFF_HEAD)
        (tail,) = _U64.unpack_from(self._buf, _OFF_TAIL)
        return int(tail - head)


_patch_lock = threading.Lock()
_patch_depth = 0
_orig_reg = None
_orig_unreg = None


@contextlib.contextmanager
def _untracked():
    """Suppress resource-tracker bookkeeping of shared_memory segments
    for the duration of the block (bpo-38119: on py<3.13 even attaching
    registers the segment, and the tracker — one daemon for the whole
    process tree — would destroy a ring other live processes still use
    at the first process exit). Both ``register`` (create/attach) and
    ``unregister`` (``unlink``, which would message the daemon about a
    name it never saw) are muted. Lifetime is managed explicitly
    instead: mesh close unlinks created rings and the live engine
    sweeps leftovers.

    Refcounted under a lock because attaches run in executor threads:
    the patch is installed when the first block enters and restored
    only when the last one exits, so one thread leaving can never
    re-expose the real tracker to a thread still mid-``SharedMemory``.
    """
    global _patch_depth, _orig_reg, _orig_unreg
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover
        yield
        return

    with _patch_lock:
        if _patch_depth == 0:
            _orig_reg = resource_tracker.register
            _orig_unreg = resource_tracker.unregister
            orig_reg, orig_unreg = _orig_reg, _orig_unreg

            def _skip_reg(name, rtype):
                if rtype != "shared_memory":
                    orig_reg(name, rtype)

            def _skip_unreg(name, rtype):
                if rtype != "shared_memory":
                    orig_unreg(name, rtype)

            resource_tracker.register = _skip_reg
            resource_tracker.unregister = _skip_unreg
        _patch_depth += 1
    try:
        yield
    finally:
        with _patch_lock:
            _patch_depth -= 1
            if _patch_depth == 0:
                resource_tracker.register = _orig_reg
                resource_tracker.unregister = _orig_unreg


def sweep_ring(name: str) -> bool:
    """Best-effort unlink of a (possibly leaked) ring segment by name.

    Used by the supervisor after a run: children that crashed before
    their mesh close leave their created rings behind. Returns whether
    a segment was found and unlinked.
    """
    if _shared_memory is None:  # pragma: no cover - platform guard
        return False
    try:
        with _untracked():
            shm = _shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        shm.close()
        with _untracked():
            shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover
        return False
    return True
