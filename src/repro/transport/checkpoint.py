"""Atomic worker checkpoints for the live (``--backend proc``) engine.

Each live worker periodically serializes everything its process would
need to resume after a SIGKILL: model weight variables (plus BatchNorm
running statistics), every named RNG stream position, the iteration
counter, the batch-size controller state, per-peer sequence state, the
recorded time series, and the worker's metric registry. The supervisor
respawns a crashed worker with ``resume=True`` and the child restores
the newest readable checkpoint before rejoining the mesh (see
docs/robustness.md for the exact restored/lost inventory).

File format: one ``.ckpt.npz`` archive per snapshot, named
``worker{w:03d}-{iteration:08d}.ckpt.npz``. Weight arrays live under a
``model/`` prefix; everything non-array is a single pickled ``meta``
blob stored as a uint8 array. Writes go to a ``.tmp`` sibling first and
are published with ``os.replace``, so a crash mid-write can never
corrupt the latest checkpoint — readers either see the previous
complete file or the new complete file. ``np.load`` validates the zip
CRC, so a torn or truncated file is detected and skipped by
:func:`load_latest`.
"""

from __future__ import annotations

import os
import pickle
import re
import zipfile
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CheckpointConfig",
    "checkpoint_path",
    "write_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "load_latest",
]

_NAME_RE = re.compile(r"^worker(\d{3})-(\d{8})\.ckpt\.npz$")
_META_KEY = "meta"
_MODEL_PREFIX = "model/"


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpoint tunables recorded in the run spec (picklable).

    ``interval_s`` is in **modelled** seconds, so one setting means the
    same training-progress cadence at any ``--speedup``. ``retention``
    bounds how many snapshots per worker are kept on disk.
    """

    directory: str
    interval_s: float = 5.0
    retention: int = 2

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("checkpoint interval_s must be positive")
        if self.retention < 1:
            raise ValueError("checkpoint retention must be >= 1")


def checkpoint_path(directory: str, worker: int, iteration: int) -> str:
    """The canonical snapshot path for one (worker, iteration) pair."""
    return os.path.join(
        directory, f"worker{worker:03d}-{iteration:08d}.ckpt.npz"
    )


def write_checkpoint(
    directory: str,
    worker: int,
    arrays: dict[str, np.ndarray],
    meta: dict,
    *,
    retention: int = 2,
) -> str:
    """Atomically write one snapshot; prune old ones; return the path."""
    os.makedirs(directory, exist_ok=True)
    iteration = int(meta.get("iteration", 0))
    path = checkpoint_path(directory, worker, iteration)
    tmp = path + ".tmp"
    payload = {_MODEL_PREFIX + name: arr for name, arr in arrays.items()}
    payload[_META_KEY] = np.frombuffer(
        pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
    )
    with open(tmp, "wb") as fh:
        np.savez(fh, **payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _prune(directory, worker, retention)
    return path


def list_checkpoints(directory: str, worker: int) -> list[str]:
    """This worker's checkpoint paths, newest (highest iteration) first."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    found = []
    for name in names:
        m = _NAME_RE.match(name)
        if m and int(m.group(1)) == worker:
            found.append((int(m.group(2)), name))
    found.sort(reverse=True)
    return [os.path.join(directory, name) for _, name in found]


def load_checkpoint(path: str) -> tuple[dict[str, np.ndarray], dict]:
    """Read one snapshot back as ``(weight_arrays, meta)``.

    Raises ``OSError``/``ValueError`` on a missing, truncated, or
    corrupt file (zip CRC mismatch included).
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            if _META_KEY not in data:
                raise ValueError(f"{path}: no meta record")
            meta = pickle.loads(data[_META_KEY].tobytes())
            arrays = {
                key[len(_MODEL_PREFIX):]: data[key]
                for key in data.files
                if key.startswith(_MODEL_PREFIX)
            }
    except (zipfile.BadZipFile, EOFError, pickle.UnpicklingError, KeyError) as exc:
        raise ValueError(f"{path}: corrupt checkpoint ({exc})") from None
    return arrays, meta


def load_latest(
    directory: str, worker: int
) -> tuple[dict[str, np.ndarray], dict] | None:
    """The newest *readable* snapshot for ``worker``, or ``None``.

    Corrupt or partially-written files are skipped (never fatal): after
    a crash the worker must come back with whatever state survives.
    """
    for path in list_checkpoints(directory, worker):
        try:
            return load_checkpoint(path)
        except (OSError, ValueError):
            continue
    return None


def _prune(directory: str, worker: int, retention: int) -> None:
    for path in list_checkpoints(directory, worker)[retention:]:
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - already gone
            pass
