"""Per-process worker runtime for the live (``--backend proc``) engine.

:class:`LiveWorkerRuntime` is the engine-protocol adapter that lets one
:class:`~repro.core.worker.Worker` — with the GBS/LBS controllers, the
``TransmissionPlanner``, and DKT completely unchanged — train inside its
own OS process against real sockets. Exactly the three things ISSUE 4
allows are adapted:

* **clock** — :class:`WallClock` maps wall time onto the modelled time
  axis via a ``speedup`` factor, so the same horizons, GBS periods, and
  bandwidth traces apply (a 600-s modelled run at speedup 20 takes 30
  wall seconds);
* **delivery** — messages cross a :class:`~repro.transport.mesh.PeerMesh`
  (serialized by :mod:`repro.transport.codec`, paced by the token-bucket
  shaper) instead of the simulator's ``MessageQueues``/``Link`` pair;
* **RCP profiling** — probe durations still come from the modelled
  compute profile (the paper's calibrated heterogeneity), exactly like
  the simulator, so the LBS allocation is comparable across backends.

Gradient/weight *math* is real — the worker draws real minibatches and
applies real gradients — while iteration *timing* follows the modelled
compute profile, preserving the calibrated compute/communication
balance that DLion's controllers react to.

``run_live_worker`` is the child-process entry point: it performs the
port-exchange handshake with :class:`~repro.core.live_engine.LiveEngine`
over a pipe, trains to the horizon, then ships its metrics, series, and
trace events back for merging.
"""

from __future__ import annotations

import asyncio
import traceback
from dataclasses import dataclass, field

from repro.cluster.messages import (
    ControlMessage,
    DktRequestMessage,
    GradientMessage,
    LossShareMessage,
    RcpShareMessage,
    WeightMessage,
)
from repro.cluster.monitor import NetworkResourceMonitor
from repro.cluster.topology import ClusterTopology
from repro.core.compute_pool import ComputePool
from repro.core.config import TrainConfig
from repro.core.gbs_controller import GbsController
from repro.core.run_metrics import RunMetrics
from repro.core.worker import Worker
from repro.nn.datasets import MinibatchSampler, SyntheticImageDataset
from repro.nn.models import build_model
from repro.obs import profile as _profile
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import NULL_TRACER, THREAD_NAMES, Tracer
from repro.transport.codec import Heartbeat
from repro.transport.mesh import (
    CHANNEL_CONTROL,
    CHANNEL_DATA,
    PeerMesh,
    TransportConfig,
)
from repro.utils.metrics import TimeSeries
from repro.utils.rng import RngPool

__all__ = ["WallClock", "LiveRunSpec", "LiveWorkerRuntime", "run_live_worker"]

# Control-plane propagation delay for GBS announcements (modelled
# seconds) — matches the simulator's constant.
_GBS_ANNOUNCE_DELAY = 0.05


class WallClock:
    """Wall time mapped onto the modelled time axis.

    ``now`` reads ``(loop_time - t0) * speedup`` modelled seconds;
    ``schedule_in(d, fn)`` fires ``fn`` after ``d / speedup`` wall
    seconds. Callback exceptions are routed to ``error_handler`` (set by
    the runtime) instead of being swallowed by the event loop.
    """

    def __init__(self, speedup: float):
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.speedup = float(speedup)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._t0 = 0.0
        self.fired = 0
        self.error_handler = None

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        """Anchor modelled t=0 at the current loop time."""
        self._loop = loop
        self._t0 = loop.time()

    @property
    def now(self) -> float:
        """Current modelled time in seconds (0.0 before :meth:`start`)."""
        if self._loop is None:
            return 0.0
        return (self._loop.time() - self._t0) * self.speedup

    def schedule_in(self, delay: float, fn, *args) -> None:
        """Run ``fn(*args)`` after ``delay`` modelled seconds."""
        if self._loop is None:
            raise RuntimeError("clock not started")
        self._loop.call_later(max(delay, 0.0) / self.speedup, self._guard, fn, args)

    def _guard(self, fn, args) -> None:
        self.fired += 1
        try:
            fn(*args)
        except BaseException as exc:  # noqa: BLE001 - must surface to parent
            if self.error_handler is not None:
                self.error_handler(exc)
            else:
                raise


@dataclass(frozen=True)
class LiveRunSpec:
    """Everything a child process needs to run one live worker.

    Must stay picklable: it crosses the ``spawn`` boundary.
    """

    config: TrainConfig
    topology: ClusterTopology
    seed: int
    horizon: float
    speedup: float
    transport: TransportConfig = field(default_factory=TransportConfig)
    trace: bool = False
    profile: bool = False
    host: str = "127.0.0.1"
    # Recorded for provenance: the parent pins the children's BLAS pools
    # via environment before spawn (see LiveEngine.run). A live worker
    # process always computes its own iterations serially — cross-worker
    # parallelism is the processes themselves.
    compute_threads: int = 1

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.speedup <= 0:
            raise ValueError("speedup must be positive")


class LiveWorkerRuntime:
    """The engine-protocol adapter one live worker trains against.

    Exposes exactly the attributes and methods ``Worker`` expects from
    ``TrainingEngine`` (clock, metrics aliases, send/record/broadcast
    hooks), implemented over a :class:`PeerMesh` and a
    :class:`WallClock`. Construction is deterministic for ``(spec,
    worker_id)``: the RNG pool uses the same named streams as the
    simulator — including building every worker's model from the shared
    ``model-init`` stream and keeping only this worker's — so a live run
    starts from bit-identical models, shards, and jitter streams.
    """

    def __init__(self, worker_id: int, spec: LiveRunSpec):
        self.worker_id = worker_id
        self.spec = spec
        self.config = spec.config
        self.topology = spec.topology
        self.n_workers = spec.topology.n_workers
        self.clock = WallClock(spec.speedup)
        self.clock.error_handler = self.fail
        self.stopped = False
        self.active: set[int] = set(range(self.n_workers))
        self.peer_graph = None
        self._failure: BaseException | None = None
        # Engine protocol: one worker per process computes serially; the
        # serial pool routes Worker._finish_iteration straight inline.
        self.compute_pool = ComputePool(self, 1)

        self.metrics = MetricsRegistry()
        rm = RunMetrics(self.metrics)
        self.run_metrics = rm
        self._c_grad_bytes = rm.c_grad_bytes
        self._c_grad_msgs = rm.c_grad_msgs
        self._c_weight_bytes = rm.c_weight_bytes
        self._h_chosen_n = rm.h_chosen_n
        self._c_iterations = rm.c_iterations
        self._h_iteration_s = rm.h_iteration_s
        self._h_wait_s = rm.h_wait_s
        self._c_wait_total = rm.c_wait_total
        self._c_compute_total = rm.c_compute_total
        self._c_dkt_merges = rm.c_dkt_merges
        self._c_dkt_pulls = rm.c_dkt_pulls
        self._g_gbs = rm.g_gbs
        self._g_lbs = rm.g_lbs
        self._g_queue_depth = rm.g_queue_depth
        self._c_queue_dropped = rm.c_queue_dropped
        self._g_active = rm.g_active
        self._c_events = rm.c_events

        self.tracer = Tracer() if spec.trace else NULL_TRACER
        if self.tracer.enabled:
            self.tracer.set_process_name(worker_id, f"worker {worker_id}")
            for tid, name in THREAD_NAMES.items():
                self.tracer.set_thread_name(worker_id, tid, name)
        self.profiler = Profiler() if spec.profile else None

        # Deterministic construction (same streams as the simulator).
        self.rng_pool = RngPool(spec.seed)
        self.dataset = self._build_dataset()
        shards = self.dataset.shards(self.n_workers, mode=self.config.shard_mode)
        self._eval_x = self.dataset.test_x[: self.config.eval_subset]
        self._eval_y = self.dataset.test_y[: self.config.eval_subset]
        self.gbs_controller = GbsController(
            self.config.gbs,
            initial_gbs=self.config.initial_lbs * self.n_workers,
            train_size=self.dataset.train_size,
        )
        # model-init is ONE shared stream consumed sequentially across
        # workers in the simulator; replay all draws, keep only ours.
        model = None
        for w in range(self.n_workers):
            candidate = build_model(
                self.config.model,
                self.rng_pool.get("model-init"),
                **self.config.model_kwargs,
            )
            if w == worker_id:
                model = candidate
        sampler = MinibatchSampler(
            shards[worker_id], self.rng_pool.get(f"sampler/{worker_id}")
        )
        monitor = NetworkResourceMonitor(worker_id, self.topology.network)
        from repro.baselines.registry import create_strategy

        strategy = create_strategy(self.config, worker_id)
        self.worker = Worker(
            worker_id=worker_id,
            engine=self,
            model=model,
            sampler=sampler,
            strategy=strategy,
            monitor=monitor,
            config=self.config,
            rng=self.rng_pool.get(f"worker/{worker_id}"),
        )
        strategy.setup(self.worker)
        self.workers = {worker_id: self.worker}  # engine-protocol shim

        # Peer progress, fed by heartbeats (the live GBS input).
        self._peer_samples: dict[int, int] = {}

        # Locally-recorded series (shipped to the parent at the end).
        self.acc_series = TimeSeries()
        self.loss_series = TimeSeries()
        self.lbs_series = TimeSeries()
        self.gbs_series = TimeSeries()
        self.active_series = TimeSeries()
        self.link_entries: dict[tuple[int, int], TimeSeries] = {}
        self.link_chosen_n: dict[tuple[int, int], TimeSeries] = {}

        self.mesh = PeerMesh(
            worker_id,
            on_message=self._on_mesh_message,
            on_peer_dead=self._on_peer_dead,
            on_error=self.fail,
            on_heartbeat=self._on_heartbeat,
            rate_fn=self._link_rate_bytes,
            config=spec.transport,
            metrics=self.metrics,
            tracer=self.tracer,
            now_fn=lambda: self.clock.now,
            progress_fn=lambda: self.worker.sampler.samples_drawn,
            seed=spec.seed,
            host=spec.host,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_dataset(self) -> SyntheticImageDataset:
        rng = self.rng_pool.get("dataset")
        cfg = self.config
        if cfg.dataset == "cifar_like":
            return SyntheticImageDataset.cifar_like(
                rng, train_size=cfg.train_size, test_size=cfg.test_size,
                **cfg.dataset_kwargs,
            )
        if cfg.dataset == "imagenet_like":
            return SyntheticImageDataset.imagenet_like(
                rng, train_size=cfg.train_size, test_size=cfg.test_size,
                **cfg.dataset_kwargs,
            )
        raise ValueError(f"unknown dataset preset {cfg.dataset!r}")

    def _link_rate_bytes(self, dst: int) -> float:
        """The shaper rate for the link to ``dst``: modelled Mbps at the
        current modelled time, converted to wall bytes/s (sped up so a
        transfer's wall duration equals modelled duration / speedup)."""
        mbps = self.topology.network.link(self.worker_id, dst).bandwidth_at(
            self.clock.now
        )
        return mbps * 1e6 / 8.0 * self.spec.speedup

    def fail(self, exc: BaseException) -> None:
        """Record the first callback failure; the run loop re-raises it."""
        if self._failure is None:
            self._failure = exc

    # ------------------------------------------------------------------
    # Engine protocol: physics + peers
    # ------------------------------------------------------------------
    def iteration_duration(self, worker: int, batch: int, t: float) -> float:
        """Modelled duration of one iteration (same compute model as sim)."""
        return self.topology.compute[worker].iter_time(
            batch, t, self.rng_pool.get(f"jitter/{worker}")
        )

    def active_peers(self, worker: int) -> list[int]:
        """Live peers of ``worker`` (the mesh's death set drives this)."""
        return sorted(w for w in self.active if w != worker)

    # ------------------------------------------------------------------
    # Engine protocol: message sends (over the mesh)
    # ------------------------------------------------------------------
    def send_gradients(
        self, src: int, dst: int, msg: GradientMessage, *, chosen_n: float | None
    ) -> None:
        """Ship gradients on the data channel, recording the same link
        accounting as the simulator (estimate-based, so Max-N budgets
        compare across backends; actual socket bytes land in
        ``transport_send_bytes_total``)."""
        nbytes = msg.wire_bytes()
        if self.config.record_link_stats:
            key = (src, dst)
            self._c_grad_bytes.inc(nbytes, src, dst)
            self._c_grad_msgs.inc(1, src, dst)
            self.link_entries.setdefault(key, TimeSeries()).append(
                self.clock.now, msg.num_entries()
            )
            if chosen_n is not None:
                self._h_chosen_n.observe(chosen_n, f"{src}->{dst}")
                self.link_chosen_n.setdefault(key, TimeSeries()).append(
                    self.clock.now, chosen_n
                )
        self.mesh.send(dst, CHANNEL_DATA, msg, trace_name=f"grad->{dst}")

    def send_control(self, src: int, dst: int, msg) -> None:
        """Ship a control message on the control channel."""
        self.mesh.send(dst, CHANNEL_CONTROL, msg, trace_name=f"ctrl->{dst}")

    def send_weights(self, src: int, dst: int, msg: WeightMessage) -> None:
        """Ship a DKT weight snapshot on the data channel."""
        self._c_weight_bytes.inc(msg.wire_bytes(), src, dst)
        self.mesh.send(dst, CHANNEL_DATA, msg, trace_name=f"weights->{dst}")

    def broadcast_rcp(self, src: int, rcp: float) -> None:
        """Share this worker's measured RCP with every live peer."""
        for dst in self.active_peers(src):
            self.send_control(src, dst, RcpShareMessage(sender=src, rcp=rcp))

    def broadcast_loss_share(self, src: int, iteration: int, avg_loss: float) -> None:
        """Share this worker's trailing-average loss with every live peer."""
        for dst in self.active_peers(src):
            self.send_control(
                src, dst,
                LossShareMessage(sender=src, iteration=iteration, avg_loss=avg_loss),
            )

    # ------------------------------------------------------------------
    # Incoming traffic (mesh callbacks; all on the event-loop thread)
    # ------------------------------------------------------------------
    def _on_mesh_message(self, src: int, channel: int, msg) -> None:
        if self.stopped:
            return  # the local model is finalized; late traffic is dropped
        try:
            if isinstance(msg, GradientMessage):
                self.worker.on_gradient_message(msg)
            elif isinstance(msg, WeightMessage):
                self.worker.on_weight_message(msg)
            elif isinstance(msg, DktRequestMessage):
                self.worker.on_dkt_request(msg)
            elif isinstance(msg, LossShareMessage):
                self.worker.on_loss_share(msg)
            elif isinstance(msg, RcpShareMessage):
                self.worker.on_rcp_share(msg)
            elif isinstance(msg, ControlMessage):
                self.worker.on_control_message(msg)
            # Unknown payloads are ignored (forward compatibility).
        except BaseException as exc:  # noqa: BLE001 - must surface to parent
            self.fail(exc)

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        self._peer_samples[hb.sender] = hb.samples_drawn

    def _on_peer_dead(self, peer: int) -> None:
        """A peer exhausted its retry budget: a leave-style membership
        change, exactly like the simulator's churn events."""
        if peer not in self.active:
            return
        self.active.discard(peer)
        self._peer_samples.pop(peer, None)
        self.active_series.append(self.clock.now, len(self.active))
        self._g_active.set(len(self.active))
        try:
            self.worker.on_membership_change(self.active)
        except BaseException as exc:  # noqa: BLE001 - must surface to parent
            self.fail(exc)

    # ------------------------------------------------------------------
    # Engine protocol: progress + the GBS tick
    # ------------------------------------------------------------------
    def global_epoch(self) -> float:
        """Estimated cluster progress: own samples plus the peers' last
        heartbeat-reported counts, over the training-set size."""
        drawn = self.worker.sampler.samples_drawn + sum(self._peer_samples.values())
        return drawn / self.dataset.train_size

    def _gbs_tick(self) -> None:
        if self.stopped:
            return
        old = self.gbs_controller.gbs
        new = self.gbs_controller.maybe_update(self.global_epoch())
        if new != old:
            self.gbs_series.append(self.clock.now, new)
            self._g_gbs.set(new)
            self.clock.schedule_in(_GBS_ANNOUNCE_DELAY, self.worker.set_gbs, new)
        self.clock.schedule_in(self.config.gbs.update_period_s, self._gbs_tick)

    # ------------------------------------------------------------------
    # Engine protocol: recording hooks
    # ------------------------------------------------------------------
    def record_loss(self, worker: int, loss: float) -> None:
        """Record one iteration's loss (and count the iteration)."""
        self.loss_series.append(self.clock.now, loss)
        self._c_iterations.inc(1, worker)

    def record_lbs(self, worker: int, lbs: int) -> None:
        """Record a local-batch-size change."""
        self.lbs_series.append(self.clock.now, lbs)
        self._g_lbs.set(lbs, worker)
        if self.tracer.enabled:
            self.tracer.counter("lbs", worker, self.clock.now, {"lbs": lbs})

    def record_dkt_merge(self, worker: int) -> None:
        """Count one applied DKT merge."""
        self._c_dkt_merges.inc(1, worker)

    def evaluate_worker(self, worker: int) -> None:
        """Accuracy measurement of the local model (out of band)."""
        if worker != self.worker_id:
            raise ValueError("a live runtime can only evaluate its own worker")
        _, acc = self.worker.model.evaluate(self._eval_x, self._eval_y)
        self.acc_series.append(self.clock.now, acc)

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def start_training(self, loop: asyncio.AbstractEventLoop) -> None:
        """Anchor the clock and kick off the worker's training loop."""
        self.clock.start(loop)
        self.lbs_series.append(0.0, self.config.initial_lbs)
        self._g_lbs.set(self.config.initial_lbs, self.worker_id)
        self.gbs_series.append(0.0, self.gbs_controller.gbs)
        self._g_gbs.set(self.gbs_controller.gbs)
        self.active_series.append(0.0, len(self.active))
        self._g_active.set(len(self.active))
        if self.config.gbs.enabled:
            self.clock.schedule_in(self.config.gbs.update_period_s, self._gbs_tick)
        w = self.worker
        if self.config.lbs.enabled:
            cost = w.run_profiling()
            self.clock.schedule_in(cost, w.try_start_iteration)
        else:
            w.try_start_iteration()

    async def wait_horizon(self) -> None:
        """Sleep (in wall time) until the modelled horizon, re-raising
        the first callback failure as soon as it is recorded."""
        while self.clock.now < self.spec.horizon:
            if self._failure is not None:
                raise self._failure
            remaining_wall = (self.spec.horizon - self.clock.now) / self.spec.speedup
            await asyncio.sleep(min(0.05, max(remaining_wall, 0.001)))
        if self._failure is not None:
            raise self._failure

    def profiled(self):
        """Activate this runtime's profiler (no-op context when unset)."""
        from contextlib import nullcontext

        if self.profiler is not None:
            return _profile.activate(self.profiler)
        return nullcontext()

    def finalize(self) -> None:
        """Stop training, take the final accuracy sample, close books."""
        self.stopped = True
        self.evaluate_worker(self.worker_id)
        w = self.worker
        wait = w.wait_time
        if w.waiting and w._wait_started is not None:
            wait += self.clock.now - w._wait_started
        self._c_wait_total.inc(wait, self.worker_id)
        self._c_compute_total.inc(w.compute_time, self.worker_id)
        self._c_events.inc(self.clock.fired)
        if self.profiler is not None:
            for name, (calls, total) in self.profiler.totals().items():
                self.run_metrics.c_profile_seconds.inc(total, name)
                self.run_metrics.c_profile_calls.inc(calls, name)

    def result_payload(self) -> dict:
        """The picklable per-worker result shipped back to the parent."""
        def series(ts: TimeSeries) -> tuple[list[float], list[float]]:
            return (list(ts.times), list(ts.values))

        return {
            "worker": self.worker_id,
            "horizon": self.clock.now,
            "accuracy": series(self.acc_series),
            "loss": series(self.loss_series),
            "lbs": series(self.lbs_series),
            "gbs": series(self.gbs_series),
            "active_workers": series(self.active_series),
            "iterations": self.worker.iteration,
            "samples_drawn": self.worker.sampler.samples_drawn,
            "dkt_merges": self.worker.dkt.merges_applied,
            "epoch": self.global_epoch(),
            "events": self.clock.fired,
            "link_entries": {k: series(v) for k, v in self.link_entries.items()},
            "link_chosen_n": {k: series(v) for k, v in self.link_chosen_n.items()},
            "metrics": self.metrics.dump_state(),
            "trace_events": self.tracer.events() if self.tracer.enabled else [],
        }


async def _child_main(worker_id: int, spec: LiveRunSpec, conn) -> None:
    loop = asyncio.get_running_loop()
    runtime = LiveWorkerRuntime(worker_id, spec)
    port = await runtime.mesh.start()
    conn.send(("port", worker_id, port))
    message = await loop.run_in_executor(None, conn.recv)
    if message[0] != "ports":  # pragma: no cover - protocol error
        raise RuntimeError(f"expected port map, got {message[0]!r}")
    port_map = {w: (spec.host, p) for w, p in message[1].items()}
    with runtime.profiled():
        await runtime.mesh.connect(port_map)
    conn.send(("ready", worker_id))
    message = await loop.run_in_executor(None, conn.recv)
    if message[0] != "go":  # pragma: no cover - protocol error
        raise RuntimeError(f"expected go, got {message[0]!r}")
    with runtime.profiled():
        runtime.start_training(loop)
        await runtime.wait_horizon()
        runtime.finalize()
    await runtime.mesh.close()
    conn.send(("result", worker_id, runtime.result_payload()))


def run_live_worker(worker_id: int, spec: LiveRunSpec, conn) -> None:
    """Child-process entry point (must stay importable for ``spawn``)."""
    try:
        asyncio.run(_child_main(worker_id, spec, conn))
    except BaseException:  # noqa: BLE001 - everything goes to the parent
        try:
            conn.send(("error", worker_id, traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
