"""Per-process worker runtime for the live (``--backend proc``) engine.

:class:`LiveWorkerRuntime` is the engine-protocol adapter that lets one
:class:`~repro.core.worker.Worker` — with the GBS/LBS controllers, the
``TransmissionPlanner``, and DKT completely unchanged — train inside its
own OS process against real sockets. Exactly the three things ISSUE 4
allows are adapted:

* **clock** — :class:`WallClock` maps wall time onto the modelled time
  axis via a ``speedup`` factor, so the same horizons, GBS periods, and
  bandwidth traces apply (a 600-s modelled run at speedup 20 takes 30
  wall seconds);
* **delivery** — messages cross a :class:`~repro.transport.mesh.PeerMesh`
  (serialized by :mod:`repro.transport.codec`, paced by the token-bucket
  shaper) instead of the simulator's ``MessageQueues``/``Link`` pair;
* **RCP profiling** — probe durations still come from the modelled
  compute profile (the paper's calibrated heterogeneity), exactly like
  the simulator, so the LBS allocation is comparable across backends.

Gradient/weight *math* is real — the worker draws real minibatches and
applies real gradients — while iteration *timing* follows the modelled
compute profile, preserving the calibrated compute/communication
balance that DLion's controllers react to.

``run_live_worker`` is the child-process entry point: it performs the
port-exchange handshake with :class:`~repro.core.live_engine.LiveEngine`
over a pipe, trains to the horizon, then ships its metrics, series, and
trace events back for merging.

Crash recovery (docs/robustness.md): when the run spec carries a
:class:`~repro.transport.checkpoint.CheckpointConfig`, the runtime
snapshots its full training state every ``interval_s`` modelled
seconds. A child respawned with ``resume=True`` restores the newest
readable checkpoint before binding its port, resumes the cluster's
modelled clock at the offset the supervisor hands it, rejoins the
active set, and bootstraps freshness with a DKT-style weight pull from
a live peer. Surviving children receive ``("revive", worker, port)``
pipe commands and re-open their mesh links to the rejoiner's new port.
A chaos plan's link faults are injected at send time through the mesh's
``fault_fn`` hook, with windows on the modelled clock.
"""

from __future__ import annotations

import asyncio
import os
import threading
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.chaos import ChaosPlan, LinkFaultInjector
from repro.cluster.messages import (
    ControlMessage,
    DktRequestMessage,
    GradientMessage,
    LossShareMessage,
    RcpShareMessage,
    WeightMessage,
)
from repro.cluster.monitor import NetworkResourceMonitor
from repro.cluster.topology import ClusterTopology
from repro.core.compute_pool import ComputePool
from repro.core.config import TrainConfig
from repro.core.gbs_controller import GbsController
from repro.core.run_metrics import RunMetrics
from repro.core.worker import Worker
from repro.nn.datasets import MinibatchSampler, SyntheticImageDataset
from repro.nn.models import build_model
from repro.obs import profile as _profile
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import NULL_TRACER, THREAD_NAMES, TID_NET, Tracer
from repro.transport.checkpoint import CheckpointConfig, load_latest, write_checkpoint
from repro.transport.codec import Heartbeat
from repro.transport.mesh import (
    CHANNEL_CONTROL,
    CHANNEL_DATA,
    PeerMesh,
    TransportConfig,
)
from repro.transport.shm import shm_available
from repro.utils.metrics import TimeSeries
from repro.utils.rng import RngPool

__all__ = ["WallClock", "LiveRunSpec", "LiveWorkerRuntime", "run_live_worker"]

# Control-plane propagation delay for GBS announcements (modelled
# seconds) — matches the simulator's constant.
_GBS_ANNOUNCE_DELAY = 0.05


class WallClock:
    """Wall time mapped onto the modelled time axis.

    ``now`` reads ``(loop_time - t0) * speedup`` modelled seconds;
    ``schedule_in(d, fn)`` fires ``fn`` after ``d / speedup`` wall
    seconds. Callback exceptions are routed to ``error_handler`` (set by
    the runtime) instead of being swallowed by the event loop.
    """

    def __init__(self, speedup: float):
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.speedup = float(speedup)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._t0 = 0.0
        self.fired = 0
        self.error_handler = None

    def start(self, loop: asyncio.AbstractEventLoop, *, offset: float = 0.0) -> None:
        """Anchor the clock so the current loop time reads ``offset``
        modelled seconds (0.0 for a fresh run; a respawned worker is
        started at the cluster's current modelled time)."""
        self._loop = loop
        self._t0 = loop.time() - offset / self.speedup

    @property
    def now(self) -> float:
        """Current modelled time in seconds (0.0 before :meth:`start`)."""
        if self._loop is None:
            return 0.0
        return (self._loop.time() - self._t0) * self.speedup

    def schedule_in(self, delay: float, fn, *args) -> None:
        """Run ``fn(*args)`` after ``delay`` modelled seconds."""
        if self._loop is None:
            raise RuntimeError("clock not started")
        self._loop.call_later(max(delay, 0.0) / self.speedup, self._guard, fn, args)

    def _guard(self, fn, args) -> None:
        self.fired += 1
        try:
            fn(*args)
        except BaseException as exc:  # noqa: BLE001 - must surface to parent
            if self.error_handler is not None:
                self.error_handler(exc)
            else:
                raise


@dataclass(frozen=True)
class LiveRunSpec:
    """Everything a child process needs to run one live worker.

    Must stay picklable: it crosses the ``spawn`` boundary.
    """

    config: TrainConfig
    topology: ClusterTopology
    seed: int
    horizon: float
    speedup: float
    transport: TransportConfig = field(default_factory=TransportConfig)
    trace: bool = False
    profile: bool = False
    host: str = "127.0.0.1"
    # Recorded for provenance: the parent pins the children's BLAS pools
    # via environment before spawn (see LiveEngine.run). A live worker
    # process always computes its own iterations serially — cross-worker
    # parallelism is the processes themselves.
    compute_threads: int = 1
    # Crash recovery: periodic checkpoints (None disables), the fault
    # plan driving link blackout/drop/delay injection, and where each
    # child redirects its stderr (tailed into supervisor error reports).
    checkpoint: CheckpointConfig | None = None
    chaos: ChaosPlan | None = None
    stderr_dir: str | None = None
    # Telemetry delta shipping: wall seconds between incremental
    # metric/trace/flight shipments to the supervisor (None disables —
    # then only the end-of-run result payload exists, and a SIGKILLed
    # worker's telemetry is lost with it).
    ship_interval_s: float | None = 1.0
    # Shared-memory data lanes between co-hosted workers (see
    # docs/architecture.md, "Transport lanes"). ``shm_token`` is the
    # per-run nonce baked into every ring segment name; the supervisor
    # generates it and sweeps leftover segments after the run.
    shm_lanes: bool = False
    shm_token: str = ""

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.speedup <= 0:
            raise ValueError("speedup must be positive")
        if self.ship_interval_s is not None and self.ship_interval_s <= 0:
            raise ValueError("ship_interval_s must be positive (or None)")


class LiveWorkerRuntime:
    """The engine-protocol adapter one live worker trains against.

    Exposes exactly the attributes and methods ``Worker`` expects from
    ``TrainingEngine`` (clock, metrics aliases, send/record/broadcast
    hooks), implemented over a :class:`PeerMesh` and a
    :class:`WallClock`. Construction is deterministic for ``(spec,
    worker_id)``: the RNG pool uses the same named streams as the
    simulator — including building every worker's model from the shared
    ``model-init`` stream and keeping only this worker's — so a live run
    starts from bit-identical models, shards, and jitter streams.
    """

    def __init__(self, worker_id: int, spec: LiveRunSpec, *, resume: bool = False):
        self.worker_id = worker_id
        self.spec = spec
        self.config = spec.config
        self.topology = spec.topology
        self.n_workers = spec.topology.n_workers
        self.clock = WallClock(spec.speedup)
        self.clock.error_handler = self.fail
        self.stopped = False
        self.active: set[int] = set(range(self.n_workers))
        self.peer_graph = None
        self._failure: BaseException | None = None
        # Engine protocol: one worker per process computes serially; the
        # serial pool routes Worker._finish_iteration straight inline.
        self.compute_pool = ComputePool(self, 1)

        self.metrics = MetricsRegistry()
        rm = RunMetrics(self.metrics)
        self.run_metrics = rm
        self._c_grad_bytes = rm.c_grad_bytes
        self._c_grad_msgs = rm.c_grad_msgs
        self._c_weight_bytes = rm.c_weight_bytes
        self._h_chosen_n = rm.h_chosen_n
        self._c_iterations = rm.c_iterations
        self._h_iteration_s = rm.h_iteration_s
        self._h_wait_s = rm.h_wait_s
        self._c_wait_total = rm.c_wait_total
        self._c_compute_total = rm.c_compute_total
        self._c_dkt_merges = rm.c_dkt_merges
        self._c_dkt_pulls = rm.c_dkt_pulls
        self._g_gbs = rm.g_gbs
        self._g_lbs = rm.g_lbs
        self._g_queue_depth = rm.g_queue_depth
        self._c_queue_dropped = rm.c_queue_dropped
        self._g_active = rm.g_active
        self._c_events = rm.c_events
        self._c_chaos_dropped = rm.c_chaos_dropped
        self._g_partition = rm.g_partition

        self.tracer = Tracer() if spec.trace else NULL_TRACER
        if self.tracer.enabled:
            self.tracer.set_process_name(worker_id, f"worker {worker_id}")
            for tid, name in THREAD_NAMES.items():
                self.tracer.set_thread_name(worker_id, tid, name)
        self.profiler = Profiler() if spec.profile else None

        # Deterministic construction (same streams as the simulator).
        self.rng_pool = RngPool(spec.seed)
        self.dataset = self._build_dataset()
        shards = self.dataset.shards(self.n_workers, mode=self.config.shard_mode)
        self._eval_x = self.dataset.test_x[: self.config.eval_subset]
        self._eval_y = self.dataset.test_y[: self.config.eval_subset]
        self.gbs_controller = GbsController(
            self.config.gbs,
            initial_gbs=self.config.initial_lbs * self.n_workers,
            train_size=self.dataset.train_size,
        )
        # model-init is ONE shared stream consumed sequentially across
        # workers in the simulator; replay all draws, keep only ours.
        model = None
        for w in range(self.n_workers):
            candidate = build_model(
                self.config.model,
                self.rng_pool.get("model-init"),
                **self.config.model_kwargs,
            )
            if w == worker_id:
                model = candidate
        sampler = MinibatchSampler(
            shards[worker_id], self.rng_pool.get(f"sampler/{worker_id}")
        )
        monitor = NetworkResourceMonitor(worker_id, self.topology.network)
        from repro.baselines.registry import create_strategy

        strategy = create_strategy(self.config, worker_id)
        self.worker = Worker(
            worker_id=worker_id,
            engine=self,
            model=model,
            sampler=sampler,
            strategy=strategy,
            monitor=monitor,
            config=self.config,
            rng=self.rng_pool.get(f"worker/{worker_id}"),
        )
        strategy.setup(self.worker)
        self.workers = {worker_id: self.worker}  # engine-protocol shim

        # Peer progress, fed by heartbeats (the live GBS input).
        self._peer_samples: dict[int, int] = {}

        # Fault injection (chaos plan): send-time verdicts on the
        # modelled clock. The rng stream is per-worker so live drop
        # sampling never perturbs the shared simulator streams.
        self._fault_injector: LinkFaultInjector | None = None
        self._active_blackouts = 0
        if spec.chaos is not None and spec.chaos.link_faults:
            self._fault_injector = LinkFaultInjector(
                spec.chaos, self.rng_pool.get(f"chaos/{worker_id}")
            )

        # Supervisor pipe for throttled progress reports (set by
        # _child_main); lets the parent time chaos kills deterministically
        # and compute lost-iteration counts.
        self.progress_conn = None
        self._last_progress_wall: float = 0.0
        # Iteration count restored from a checkpoint (0 = fresh start);
        # reported to the supervisor so it can compute lost iterations.
        self.restored_iteration = 0

        # Telemetry delta shipping (crash-safety): cumulative metric
        # snapshots plus incremental trace/flight events go to the
        # supervisor every ship_interval_s wall seconds, so a SIGKILL
        # loses at most one interval of telemetry. The flight recorder
        # is always on — it is the black box when tracing is disabled.
        self.flight = FlightRecorder(worker_id)
        self._trace_cursor = 0
        self._last_ship_wall = 0.0
        self.deltas_shipped = 0

        # Locally-recorded series (shipped to the parent at the end).
        self.acc_series = TimeSeries()
        self.loss_series = TimeSeries()
        self.lbs_series = TimeSeries()
        self.gbs_series = TimeSeries()
        self.active_series = TimeSeries()
        self.link_entries: dict[tuple[int, int], TimeSeries] = {}
        self.link_chosen_n: dict[tuple[int, int], TimeSeries] = {}

        shm_peers = self._shm_lane_peers(resume)
        self.mesh = PeerMesh(
            worker_id,
            on_message=self._on_mesh_message,
            on_peer_dead=self._on_peer_dead,
            on_error=self.fail,
            on_heartbeat=self._on_heartbeat,
            rate_fn=self._link_rate_bytes,
            config=spec.transport,
            metrics=self.metrics,
            tracer=self.tracer,
            now_fn=lambda: self.clock.now,
            progress_fn=lambda: self.worker.sampler.samples_drawn,
            fault_fn=self._mesh_fault_fn if self._fault_injector else None,
            seed=spec.seed,
            host=spec.host,
            shm_out=shm_peers,
            shm_in=shm_peers,
            shm_token=spec.shm_token,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_dataset(self) -> SyntheticImageDataset:
        rng = self.rng_pool.get("dataset")
        cfg = self.config
        if cfg.dataset == "cifar_like":
            return SyntheticImageDataset.cifar_like(
                rng, train_size=cfg.train_size, test_size=cfg.test_size,
                **cfg.dataset_kwargs,
            )
        if cfg.dataset == "imagenet_like":
            return SyntheticImageDataset.imagenet_like(
                rng, train_size=cfg.train_size, test_size=cfg.test_size,
                **cfg.dataset_kwargs,
            )
        raise ValueError(f"unknown dataset preset {cfg.dataset!r}")

    def _shm_lane_peers(self, resume: bool) -> set[int]:
        """Which peers' data links ride the shm lane.

        The rule is symmetric — both ends of a link evaluate the same
        min-of-both-directions modelled bandwidth at t=0 against
        ``transport.shm_min_mbps`` — so sender and receiver always agree
        on a link's lane without negotiating. A respawned worker
        (``resume=True``) stays on TCP everywhere: its peers' ring
        attachments still point at the crashed incarnation's segments,
        and the supervisor's revive path downgrades their links to TCP
        to match (see :meth:`PeerMesh.revive`).
        """
        if not self.spec.shm_lanes or resume or not shm_available():
            return set()
        cutoff = self.spec.transport.shm_min_mbps
        peers: set[int] = set()
        for dst in range(self.n_workers):
            if dst == self.worker_id:
                continue
            fwd = self.topology.network.link(self.worker_id, dst)
            rev = self.topology.network.link(dst, self.worker_id)
            if min(fwd.bandwidth_at(0.0), rev.bandwidth_at(0.0)) >= cutoff:
                peers.add(dst)
        return peers

    def _link_rate_bytes(self, dst: int) -> float:
        """The shaper rate for the link to ``dst``: modelled Mbps at the
        current modelled time, converted to wall bytes/s (sped up so a
        transfer's wall duration equals modelled duration / speedup)."""
        mbps = self.topology.network.link(self.worker_id, dst).bandwidth_at(
            self.clock.now
        )
        return mbps * 1e6 / 8.0 * self.spec.speedup

    def fail(self, exc: BaseException) -> None:
        """Record the first callback failure; the run loop re-raises it."""
        if self._failure is None:
            self._failure = exc

    # ------------------------------------------------------------------
    # Engine protocol: physics + peers
    # ------------------------------------------------------------------
    def iteration_duration(self, worker: int, batch: int, t: float) -> float:
        """Modelled duration of one iteration (same compute model as sim)."""
        return self.topology.compute[worker].iter_time(
            batch, t, self.rng_pool.get(f"jitter/{worker}")
        )

    def active_peers(self, worker: int) -> list[int]:
        """Live peers of ``worker`` (the mesh's death set drives this)."""
        return sorted(w for w in self.active if w != worker)

    # ------------------------------------------------------------------
    # Engine protocol: message sends (over the mesh)
    # ------------------------------------------------------------------
    def send_gradients(
        self, src: int, dst: int, msg: GradientMessage, *, chosen_n: float | None
    ) -> None:
        """Ship gradients on the data channel, recording the same link
        accounting as the simulator (estimate-based, so Max-N budgets
        compare across backends; actual socket bytes land in
        ``transport_send_bytes_total``)."""
        nbytes = msg.wire_bytes()
        if self.config.record_link_stats:
            key = (src, dst)
            self._c_grad_bytes.inc(nbytes, src, dst)
            self._c_grad_msgs.inc(1, src, dst)
            self.link_entries.setdefault(key, TimeSeries()).append(
                self.clock.now, msg.num_entries()
            )
            if chosen_n is not None:
                self._h_chosen_n.observe(chosen_n, f"{src}->{dst}")
                self.link_chosen_n.setdefault(key, TimeSeries()).append(
                    self.clock.now, chosen_n
                )
        self.mesh.send(dst, CHANNEL_DATA, msg, trace_name=f"grad->{dst}")

    def send_gradients_batch(self, src: int, items) -> None:
        """Engine protocol: a worker's same-instant gradient fan-out.

        Real sockets serialize per destination anyway, so the live
        runtime just replays the batch sequentially."""
        for dst, msg, chosen_n in items:
            self.send_gradients(src, dst, msg, chosen_n=chosen_n)

    def active_members(self) -> list[int]:
        """Engine protocol: sorted live worker ids."""
        return sorted(self.active)

    def send_control(self, src: int, dst: int, msg) -> None:
        """Ship a control message on the control channel."""
        self.mesh.send(dst, CHANNEL_CONTROL, msg, trace_name=f"ctrl->{dst}")

    def send_weights(self, src: int, dst: int, msg: WeightMessage) -> None:
        """Ship a DKT weight snapshot on the data channel."""
        self._c_weight_bytes.inc(msg.wire_bytes(), src, dst)
        self.mesh.send(dst, CHANNEL_DATA, msg, trace_name=f"weights->{dst}")

    def broadcast_rcp(self, src: int, rcp: float) -> None:
        """Share this worker's measured RCP with every live peer."""
        for dst in self.active_peers(src):
            self.send_control(src, dst, RcpShareMessage(sender=src, rcp=rcp))

    def broadcast_loss_share(self, src: int, iteration: int, avg_loss: float) -> None:
        """Share this worker's trailing-average loss with every live peer."""
        for dst in self.active_peers(src):
            self.send_control(
                src, dst,
                LossShareMessage(sender=src, iteration=iteration, avg_loss=avg_loss),
            )

    # ------------------------------------------------------------------
    # Incoming traffic (mesh callbacks; all on the event-loop thread)
    # ------------------------------------------------------------------
    def _on_mesh_message(self, src: int, channel: int, msg) -> None:
        if self.stopped:
            return  # the local model is finalized; late traffic is dropped
        try:
            if isinstance(msg, GradientMessage):
                self.worker.on_gradient_message(msg)
            elif isinstance(msg, WeightMessage):
                self.worker.on_weight_message(msg)
            elif isinstance(msg, DktRequestMessage):
                self.worker.on_dkt_request(msg)
            elif isinstance(msg, LossShareMessage):
                self.worker.on_loss_share(msg)
            elif isinstance(msg, RcpShareMessage):
                self.worker.on_rcp_share(msg)
            elif isinstance(msg, ControlMessage):
                self.worker.on_control_message(msg)
            # Unknown payloads are ignored (forward compatibility).
        except BaseException as exc:  # noqa: BLE001 - must surface to parent
            self.fail(exc)

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        self._peer_samples[hb.sender] = hb.samples_drawn

    def _on_peer_dead(self, peer: int) -> None:
        """A peer exhausted its retry budget: a leave-style membership
        change, exactly like the simulator's churn events."""
        if peer not in self.active:
            return
        self.active.discard(peer)
        self._peer_samples.pop(peer, None)
        self.active_series.append(self.clock.now, len(self.active))
        self._g_active.set(len(self.active))
        self.flight.record("peer-dead", self.clock.now, {"peer": peer})
        try:
            self.worker.on_membership_change(self.active)
        except BaseException as exc:  # noqa: BLE001 - must surface to parent
            self.fail(exc)

    def on_peer_revived(self, peer: int, addr: tuple[str, int]) -> None:
        """The supervisor respawned ``peer`` at ``addr``: rebuild the
        mesh links and fold the rejoin into a membership change.

        Always refreshes the links — even when this worker never got
        around to declaring the peer dead (a fast restart can beat the
        retry budget), the old links point at a port nobody listens on
        and must be superseded before their retry loop gives up.
        """
        self.mesh.revive(peer, addr)
        self.flight.record("peer-revived", self.clock.now, {"peer": peer})
        if peer in self.active:
            return
        self.active.add(peer)
        self.active_series.append(self.clock.now, len(self.active))
        self._g_active.set(len(self.active))
        try:
            self.worker.on_membership_change(self.active)
        except BaseException as exc:  # noqa: BLE001 - must surface to parent
            self.fail(exc)

    # ------------------------------------------------------------------
    # Fault injection (chaos plan)
    # ------------------------------------------------------------------
    def _mesh_fault_fn(self, dst: int, channel: int) -> float | None:
        """Send-time chaos verdict: None drops, >0 is extra wall delay."""
        verdict = self._fault_injector.on_send(self.worker_id, dst, self.clock.now)
        if verdict is None:
            self._c_chaos_dropped.inc(1, self.worker_id, dst)
            return None
        # The injector speaks modelled seconds; the mesh sleeps in wall.
        return verdict / self.spec.speedup

    def _schedule_blackout_markers(self) -> None:
        """Pre-schedule partition-gauge flips and trace instants for
        every blackout window this worker sends into."""
        if self.spec.chaos is None:
            return
        for f in self.spec.chaos.blackout_windows():
            srcs = {f.src} | ({f.dst} if f.bidirectional else set())
            if self.worker_id not in srcs:
                continue
            self.clock.schedule_in(
                max(f.start - self.clock.now, 0.0), self._blackout_edge, f, +1
            )
            self.clock.schedule_in(
                max(f.end - self.clock.now, 0.0), self._blackout_edge, f, -1
            )

    def _blackout_edge(self, fault, delta: int) -> None:
        self._active_blackouts = max(0, self._active_blackouts + delta)
        self._g_partition.set(self._active_blackouts)
        self.flight.record(
            "blackout-start" if delta > 0 else "blackout-end",
            self.clock.now, {"src": fault.src, "dst": fault.dst},
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "blackout-start" if delta > 0 else "blackout-end",
                self.worker_id,
                TID_NET,
                self.clock.now,
                cat="chaos",
                args={"src": fault.src, "dst": fault.dst},
            )

    # ------------------------------------------------------------------
    # Checkpointing (crash recovery)
    # ------------------------------------------------------------------
    def _layer_state(self) -> tuple[dict, dict]:
        """(arrays, meta) for per-layer step state: BatchNorm running
        statistics as arrays, Dropout RNG positions as picklable dicts."""
        arrays: dict = {}
        rng_states: dict[int, dict] = {}
        for i, layer in enumerate(self.worker.model.layers):
            mean = getattr(layer, "running_mean", None)
            if mean is not None:
                arrays[f"__bn{i}/mean"] = mean.copy()
                arrays[f"__bn{i}/var"] = layer.running_var.copy()
            rng = getattr(layer, "rng", None)
            if rng is not None:
                rng_states[i] = rng.bit_generator.state
        return arrays, rng_states

    def checkpoint_state(self) -> tuple[dict, dict]:
        """Everything needed to resume this worker after a SIGKILL."""
        w = self.worker

        def series(ts: TimeSeries) -> tuple[list[float], list[float]]:
            return (list(ts.times), list(ts.values))

        arrays = {name: arr.copy() for name, arr in w.model.variables().items()}
        layer_arrays, layer_rngs = self._layer_state()
        arrays.update(layer_arrays)
        gc = self.gbs_controller
        meta = {
            "format": 1,
            "worker": self.worker_id,
            "seed": self.spec.seed,
            "n_workers": self.n_workers,
            "iteration": w.iteration,
            "model_version": w.model_version,
            "time": self.clock.now,
            "samples_drawn": w.sampler.samples_drawn,
            "rng": {
                "sampler": w.sampler.rng.bit_generator.state,
                "worker": w.rng.bit_generator.state,
                "jitter": self.rng_pool.get(
                    f"jitter/{self.worker_id}"
                ).bit_generator.state,
                "layers": layer_rngs,
            },
            "lbs": w.lbs,
            "gbs": w.gbs,
            "rcp_table": dict(w.rcp_table),
            "received_from": dict(w.sync_state.received_from),
            "dkt": {
                "losses": list(w.dkt._losses),
                "shared_losses": dict(w.dkt.shared_losses),
                "pulls_requested": w.dkt.pulls_requested,
                "merges_applied": w.dkt.merges_applied,
            },
            "iter_time_ema": w._iter_time_ema,
            "recent_iters": list(w._recent_iters),
            "stats": {
                "grad_msgs_sent": w.stats_grad_msgs_sent,
                "grad_msgs_received": w.stats_grad_msgs_received,
                "weight_pulls": w.stats_weight_pulls,
            },
            "compute_time": w.compute_time,
            "wait_time": w.wait_time,
            "gbs_controller": {
                "gbs": gc.gbs,
                "phase": gc.phase,
                "last_growth_epoch": gc._last_growth_epoch,
            },
            "peer_samples": dict(self._peer_samples),
            "metrics": self.metrics.dump_state(),
            "series": {
                "accuracy": series(self.acc_series),
                "loss": series(self.loss_series),
                "lbs": series(self.lbs_series),
                "gbs": series(self.gbs_series),
                "active": series(self.active_series),
            },
            "link_entries": {k: series(v) for k, v in self.link_entries.items()},
            "link_chosen_n": {k: series(v) for k, v in self.link_chosen_n.items()},
        }
        return arrays, meta

    def restore_from(self, arrays: dict, meta: dict) -> None:
        """Rebuild worker state from a checkpoint (before mesh start).

        Weights, RNG stream positions, counters, controller state, and
        the recorded series come back exactly; anything in flight at
        the crash (outbox frames, queued peer messages, an unfinished
        iteration) is lost by design — see docs/robustness.md.
        """
        if meta.get("seed") != self.spec.seed or meta.get("worker") != self.worker_id:
            raise ValueError(
                f"checkpoint mismatch: written by worker {meta.get('worker')} "
                f"seed {meta.get('seed')}, restoring as worker "
                f"{self.worker_id} seed {self.spec.seed}"
            )
        w = self.worker
        weights = {
            name: arr for name, arr in arrays.items() if not name.startswith("__bn")
        }
        w.model.set_weights(weights)
        for i, layer in enumerate(w.model.layers):
            mean_key = f"__bn{i}/mean"
            if mean_key in arrays:
                np.copyto(layer.running_mean, arrays[mean_key])
                np.copyto(layer.running_var, arrays[f"__bn{i}/var"])
            rng = getattr(layer, "rng", None)
            if rng is not None and i in meta["rng"]["layers"]:
                rng.bit_generator.state = meta["rng"]["layers"][i]
        w.sampler.rng.bit_generator.state = meta["rng"]["sampler"]
        w.rng.bit_generator.state = meta["rng"]["worker"]
        self.rng_pool.get(f"jitter/{self.worker_id}").bit_generator.state = (
            meta["rng"]["jitter"]
        )
        w.iteration = meta["iteration"]
        w.model_version = meta["model_version"]
        w.sync_state.iteration = w.iteration
        w.sync_state.received_from = dict(meta["received_from"])
        w.sampler.samples_drawn = meta["samples_drawn"]
        w.lbs = meta["lbs"]
        w.gbs = meta["gbs"]
        w.rcp_table = dict(meta["rcp_table"])
        w.dkt._losses.extend(meta["dkt"]["losses"])
        w.dkt.shared_losses = dict(meta["dkt"]["shared_losses"])
        w.dkt.pulls_requested = meta["dkt"]["pulls_requested"]
        w.dkt.merges_applied = meta["dkt"]["merges_applied"]
        w._iter_time_ema = meta["iter_time_ema"]
        w._recent_iters.extend(tuple(x) for x in meta["recent_iters"])
        w.stats_grad_msgs_sent = meta["stats"]["grad_msgs_sent"]
        w.stats_grad_msgs_received = meta["stats"]["grad_msgs_received"]
        w.stats_weight_pulls = meta["stats"]["weight_pulls"]
        w.compute_time = meta["compute_time"]
        w.wait_time = meta["wait_time"]
        gc = self.gbs_controller
        gc.gbs = meta["gbs_controller"]["gbs"]
        gc.phase = meta["gbs_controller"]["phase"]
        gc._last_growth_epoch = meta["gbs_controller"]["last_growth_epoch"]
        self._peer_samples = dict(meta["peer_samples"])
        # Counters add onto a fresh registry: an exact restore.
        self.metrics.merge_state(meta["metrics"])

        def refill(ts: TimeSeries, pair) -> None:
            for t, v in zip(*pair):
                ts.append(t, v)

        refill(self.acc_series, meta["series"]["accuracy"])
        refill(self.loss_series, meta["series"]["loss"])
        refill(self.lbs_series, meta["series"]["lbs"])
        refill(self.gbs_series, meta["series"]["gbs"])
        refill(self.active_series, meta["series"]["active"])
        for key, pair in meta["link_entries"].items():
            refill(self.link_entries.setdefault(tuple(key), TimeSeries()), pair)
        for key, pair in meta["link_chosen_n"].items():
            refill(self.link_chosen_n.setdefault(tuple(key), TimeSeries()), pair)
        self.restored_iteration = w.iteration

    def _checkpoint_tick(self) -> None:
        if self.stopped:
            return
        cfg = self.spec.checkpoint
        arrays, meta = self.checkpoint_state()
        write_checkpoint(
            cfg.directory, self.worker_id, arrays, meta, retention=cfg.retention
        )
        self.flight.record(
            "checkpoint", self.clock.now,
            {"iteration": self.worker.iteration},
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "checkpoint", self.worker_id, TID_NET, self.clock.now,
                cat="chaos", args={"iteration": self.worker.iteration},
            )
        self.clock.schedule_in(cfg.interval_s, self._checkpoint_tick)

    # ------------------------------------------------------------------
    # Engine protocol: progress + the GBS tick
    # ------------------------------------------------------------------
    def global_epoch(self) -> float:
        """Estimated cluster progress: own samples plus the peers' last
        heartbeat-reported counts, over the training-set size."""
        drawn = self.worker.sampler.samples_drawn + sum(self._peer_samples.values())
        return drawn / self.dataset.train_size

    def _gbs_tick(self) -> None:
        if self.stopped:
            return
        old = self.gbs_controller.gbs
        new = self.gbs_controller.maybe_update(self.global_epoch())
        if new != old:
            self.gbs_series.append(self.clock.now, new)
            self._g_gbs.set(new)
            self.clock.schedule_in(_GBS_ANNOUNCE_DELAY, self.worker.set_gbs, new)
        self.clock.schedule_in(self.config.gbs.update_period_s, self._gbs_tick)

    # ------------------------------------------------------------------
    # Engine protocol: recording hooks
    # ------------------------------------------------------------------
    def record_loss(self, worker: int, loss: float) -> None:
        """Record one iteration's loss (and count the iteration)."""
        self.loss_series.append(self.clock.now, loss)
        self._c_iterations.inc(1, worker)
        self.flight.record(
            "iteration", self.clock.now,
            {"iteration": self.worker.iteration, "loss": round(float(loss), 5)},
        )
        self._report_progress()

    def _report_progress(self) -> None:
        """Throttled ``("progress", w, iteration, t)`` to the supervisor.

        Cheap (a few dozen bytes, at most ~4 Hz wall) and what lets the
        parent gate chaos kills on real progress and account for lost
        iterations after a crash.
        """
        if self.progress_conn is None or self.clock._loop is None:
            return
        wall = self.clock._loop.time()
        if wall - self._last_progress_wall < 0.25:
            return
        self._last_progress_wall = wall
        try:
            self.progress_conn.send(
                ("progress", self.worker_id, self.worker.iteration, self.clock.now)
            )
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            self.progress_conn = None

    def record_lbs(self, worker: int, lbs: int) -> None:
        """Record a local-batch-size change."""
        self.lbs_series.append(self.clock.now, lbs)
        self._g_lbs.set(lbs, worker)
        if self.tracer.enabled:
            self.tracer.counter("lbs", worker, self.clock.now, {"lbs": lbs})

    def record_dkt_merge(self, worker: int) -> None:
        """Count one applied DKT merge."""
        self._c_dkt_merges.inc(1, worker)

    def evaluate_worker(self, worker: int) -> None:
        """Accuracy measurement of the local model (out of band)."""
        if worker != self.worker_id:
            raise ValueError("a live runtime can only evaluate its own worker")
        _, acc = self.worker.model.evaluate(self._eval_x, self._eval_y)
        self.acc_series.append(self.clock.now, acc)

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def start_training(
        self, loop: asyncio.AbstractEventLoop, *, resume: dict | None = None
    ) -> None:
        """Anchor the clock and kick off the worker's training loop.

        ``resume`` (from the supervisor's go message) carries the
        cluster's current modelled time and active set: the clock jumps
        to the offset (the crash gap stays visible in every series),
        the restored worker re-seeds its sync state at its own
        iteration, and freshness comes from a DKT-style pull against a
        live peer — the same bootstrap the simulator's join events run.
        """
        if resume is None:
            self.clock.start(loop)
            self.lbs_series.append(0.0, self.config.initial_lbs)
            self._g_lbs.set(self.config.initial_lbs, self.worker_id)
            self.gbs_series.append(0.0, self.gbs_controller.gbs)
            self._g_gbs.set(self.gbs_controller.gbs)
            self.active_series.append(0.0, len(self.active))
            self._g_active.set(len(self.active))
            if self.config.gbs.enabled:
                self.clock.schedule_in(
                    self.config.gbs.update_period_s, self._gbs_tick
                )
            w = self.worker
            if self.config.lbs.enabled:
                cost = w.run_profiling()
                self.clock.schedule_in(cost, w.try_start_iteration)
            else:
                w.try_start_iteration()
        else:
            self.clock.start(loop, offset=float(resume.get("clock_offset", 0.0)))
            w = self.worker
            self.active = {self.worker_id} | set(resume.get("active", ()))
            now = self.clock.now
            self.active_series.append(now, len(self.active))
            self._g_active.set(len(self.active))
            self._g_lbs.set(w.lbs, self.worker_id)
            self._g_gbs.set(self.gbs_controller.gbs)
            # Peers have advanced past the checkpoint; re-seed the sync
            # gate at our own (restored) iteration so neither side
            # blocks on history the other never saw.
            w.sync_state.received_from = {p: w.iteration for p in w.peers}
            w.on_membership_change(self.active)
            self.flight.record(
                "worker-rejoined", now, {"iteration": w.iteration}
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    "worker-rejoined", self.worker_id, TID_NET, now,
                    cat="chaos", args={"iteration": w.iteration},
                )
            # Freshness bootstrap: DKT-style weight pull from the best
            # known live peer (first live peer before any loss shares).
            target = w.dkt.pull_target()
            if target is None or target == self.worker_id or target not in self.active:
                candidates = [p for p in sorted(self.active) if p != self.worker_id]
                target = candidates[0] if candidates else None
            if target is not None:
                self.send_control(
                    self.worker_id,
                    target,
                    DktRequestMessage(sender=self.worker_id, iteration=w.iteration),
                )
            if self.config.gbs.enabled:
                self.clock.schedule_in(
                    self.config.gbs.update_period_s, self._gbs_tick
                )
            w.try_start_iteration()
        if self.spec.checkpoint is not None:
            self.clock.schedule_in(
                self.spec.checkpoint.interval_s, self._checkpoint_tick
            )
        self._schedule_blackout_markers()

    async def wait_horizon(self, inbox: asyncio.Queue | None = None) -> None:
        """Sleep (in wall time) until the modelled horizon, re-raising
        the first callback failure as soon as it is recorded, applying
        any supervisor commands (peer revivals) that arrive, and
        shipping telemetry deltas on their wall-clock cadence."""
        while self.clock.now < self.spec.horizon:
            if self._failure is not None:
                raise self._failure
            if inbox is not None:
                while True:
                    try:
                        msg = inbox.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if msg and msg[0] == "revive":
                        self.on_peer_revived(msg[1], (self.spec.host, msg[2]))
            self._maybe_ship_delta()
            remaining_wall = (self.spec.horizon - self.clock.now) / self.spec.speedup
            await asyncio.sleep(min(0.05, max(remaining_wall, 0.001)))
        if self._failure is not None:
            raise self._failure

    # ------------------------------------------------------------------
    # Telemetry delta shipping
    # ------------------------------------------------------------------
    def _maybe_ship_delta(self) -> None:
        interval = self.spec.ship_interval_s
        if interval is None or self.progress_conn is None or self.clock._loop is None:
            return
        wall = self.clock._loop.time()
        if wall - self._last_ship_wall < interval:
            return
        self._last_ship_wall = wall
        self.ship_delta()

    def ship_delta(self) -> None:
        """Ship one incremental telemetry delta to the supervisor.

        The metrics snapshot is *cumulative* (``dump_state`` of the
        whole registry): the parent keeps only the latest one per
        incarnation, so shipping is idempotent and a lost delta costs
        one interval of staleness, never double counting. Trace events
        ship incrementally through a cursor; flight-recorder events are
        drained (shipped exactly once).
        """
        if self.progress_conn is None:
            return
        trace_events, self._trace_cursor = self.tracer.delta_events(
            self._trace_cursor
        )
        payload = {
            "iteration": self.worker.iteration,
            "time": self.clock.now,
            "samples_drawn": self.worker.sampler.samples_drawn,
            "restored_iteration": self.restored_iteration,
            "metrics": self.metrics.dump_state(),
            "trace_events": trace_events,
            "flight": self.flight.drain(),
        }
        try:
            self.progress_conn.send(("delta", self.worker_id, payload))
            self.deltas_shipped += 1
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            self.progress_conn = None

    def profiled(self):
        """Activate this runtime's profiler (no-op context when unset)."""
        from contextlib import nullcontext

        if self.profiler is not None:
            return _profile.activate(self.profiler)
        return nullcontext()

    def finalize(self) -> None:
        """Stop training, take the final accuracy sample, close books."""
        self.stopped = True
        self.flight.record(
            "finalize", self.clock.now, {"iteration": self.worker.iteration}
        )
        self.evaluate_worker(self.worker_id)
        w = self.worker
        wait = w.wait_time
        if w.waiting and w._wait_started is not None:
            wait += self.clock.now - w._wait_started
        self._c_wait_total.inc(wait, self.worker_id)
        self._c_compute_total.inc(w.compute_time, self.worker_id)
        self._c_events.inc(self.clock.fired)
        if self.profiler is not None:
            for name, (calls, total) in self.profiler.totals().items():
                self.run_metrics.c_profile_seconds.inc(total, name)
                self.run_metrics.c_profile_calls.inc(calls, name)

    def result_payload(self) -> dict:
        """The picklable per-worker result shipped back to the parent.

        ``trace_events`` and ``flight`` are incremental past the last
        shipped delta (the parent accumulates the delta stream), so a
        run with shipping disabled ships everything here and a run with
        shipping enabled ships only the tail — no duplicates either way.
        """
        def series(ts: TimeSeries) -> tuple[list[float], list[float]]:
            return (list(ts.times), list(ts.values))

        trace_events, self._trace_cursor = self.tracer.delta_events(
            self._trace_cursor
        )
        return {
            "worker": self.worker_id,
            "horizon": self.clock.now,
            "accuracy": series(self.acc_series),
            "loss": series(self.loss_series),
            "lbs": series(self.lbs_series),
            "gbs": series(self.gbs_series),
            "active_workers": series(self.active_series),
            "iterations": self.worker.iteration,
            "samples_drawn": self.worker.sampler.samples_drawn,
            "dkt_merges": self.worker.dkt.merges_applied,
            "epoch": self.global_epoch(),
            "events": self.clock.fired,
            "link_entries": {k: series(v) for k, v in self.link_entries.items()},
            "link_chosen_n": {k: series(v) for k, v in self.link_chosen_n.items()},
            "metrics": self.metrics.dump_state(),
            "trace_events": trace_events,
            "flight": self.flight.drain(),
        }


async def _child_main(
    worker_id: int, spec: LiveRunSpec, conn, resume: bool = False
) -> None:
    loop = asyncio.get_running_loop()
    inbox: asyncio.Queue = asyncio.Queue()

    def _pump() -> None:
        # The pipe pump: a daemon thread blocks on conn.recv() and
        # forwards every parent message into the event loop, so the
        # child can react to supervisor commands (peer revivals) at any
        # point of the run, not just at fixed handshake steps.
        try:
            while True:
                msg = conn.recv()
                loop.call_soon_threadsafe(inbox.put_nowait, msg)
        except (EOFError, OSError):
            try:
                loop.call_soon_threadsafe(inbox.put_nowait, ("eof",))
            except RuntimeError:  # pragma: no cover - loop already gone
                pass

    runtime = LiveWorkerRuntime(worker_id, spec, resume=resume)
    if resume and spec.checkpoint is not None:
        restored = load_latest(spec.checkpoint.directory, worker_id)
        if restored is not None:
            runtime.restore_from(*restored)
    runtime.progress_conn = conn
    threading.Thread(target=_pump, name="pipe-pump", daemon=True).start()
    port = await runtime.mesh.start()
    conn.send(("port", worker_id, port, runtime.restored_iteration))
    message = await inbox.get()
    if message[0] != "ports":  # pragma: no cover - protocol error
        raise RuntimeError(f"expected port map, got {message[0]!r}")
    port_map = {w: (spec.host, p) for w, p in message[1].items()}
    with runtime.profiled():
        await runtime.mesh.connect(port_map)
    conn.send(("ready", worker_id))
    message = await inbox.get()
    if message[0] != "go":  # pragma: no cover - protocol error
        raise RuntimeError(f"expected go, got {message[0]!r}")
    resume_info = message[1] if len(message) > 1 else None
    with runtime.profiled():
        runtime.start_training(loop, resume=resume_info)
        await runtime.wait_horizon(inbox)
        runtime.finalize()
    await runtime.mesh.close()
    conn.send(("result", worker_id, runtime.result_payload()))


def run_live_worker(
    worker_id: int, spec: LiveRunSpec, conn, resume: bool = False
) -> None:
    """Child-process entry point (must stay importable for ``spawn``).

    ``resume=True`` marks a supervised respawn: the child restores its
    newest checkpoint before handshaking, and ``start_training`` runs
    the rejoin path with the context the go message carries.
    """
    if spec.stderr_dir:
        # Capture crash output where the supervisor can tail it into
        # handshake-failure and unexpected-death error reports.
        try:
            os.makedirs(spec.stderr_dir, exist_ok=True)
            log = open(
                os.path.join(spec.stderr_dir, f"worker{worker_id}.stderr.log"),
                "ab",
                buffering=0,
            )
            os.dup2(log.fileno(), 2)
        except OSError:  # pragma: no cover - stderr capture is best-effort
            pass
    try:
        asyncio.run(_child_main(worker_id, spec, conn, resume))
    except BaseException:  # noqa: BLE001 - everything goes to the parent
        try:
            conn.send(("error", worker_id, traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
