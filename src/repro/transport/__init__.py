"""Real multi-process transport runtime.

The simulator's `cluster.queues` / `cluster.network` pair models the
prototype's Redis control/data queues over emulated links. This package
is the *live* counterpart: the same :class:`~repro.cluster.messages`
dataclasses serialized by a versioned wire codec (:mod:`.codec`),
shipped over an asyncio TCP peer mesh with separate control and data
channels per peer (:mod:`.mesh`), paced by per-link token-bucket
bandwidth shapers (:mod:`.shaper`) so the Table 3 WAN/LAN asymmetry is
enforced on real sockets, and driven by a per-process worker runtime
(:mod:`.runtime`) that reuses :class:`~repro.core.worker.Worker`
unchanged. `repro.core.live_engine` orchestrates the processes.
"""

from repro.transport.codec import decode_message, encode_message
from repro.transport.mesh import CHANNEL_CONTROL, CHANNEL_DATA, PeerMesh, TransportConfig
from repro.transport.shaper import TokenBucket

__all__ = [
    "encode_message",
    "decode_message",
    "PeerMesh",
    "TransportConfig",
    "CHANNEL_CONTROL",
    "CHANNEL_DATA",
    "TokenBucket",
]
