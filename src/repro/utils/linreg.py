"""Ordinary least-squares line fitting.

DLion's LBS controller profiles a worker's compute capacity by regressing
iteration time on local batch size (paper §3.2: "find a relationship
between local batch sizes and elapsed times ... through a linear
regression algorithm"). This module provides the small, dependency-free
fit used there, plus prediction/inversion helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LinearFit", "fit_line"]


@dataclass(frozen=True)
class LinearFit:
    """A fitted line ``y = intercept + slope * x``."""

    intercept: float
    slope: float
    r2: float
    n: int

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the fitted line at ``x``."""
        return self.intercept + self.slope * np.asarray(x, dtype=float)

    def invert(self, y: float) -> float:
        """Solve ``y = intercept + slope * x`` for ``x``.

        Used to answer "what batch size fits in this much time". Raises
        if the line is flat (slope ~ 0), since no unique inverse exists.
        """
        if abs(self.slope) < 1e-12:
            raise ZeroDivisionError("cannot invert a flat linear fit")
        return (y - self.intercept) / self.slope


def fit_line(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Least-squares fit of ``y = a + b x``.

    Requires at least two distinct x values; with exactly collinear input
    the fit is exact and ``r2 == 1``.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if xa.size < 2:
        raise ValueError("need at least two points to fit a line")
    if np.ptp(xa) == 0.0:
        raise ValueError("x values are all identical; slope is undefined")

    xm = xa.mean()
    ym = ya.mean()
    xc = xa - xm
    slope = float(np.dot(xc, ya - ym) / np.dot(xc, xc))
    intercept = float(ym - slope * xm)

    resid = ya - (intercept + slope * xa)
    ss_res = float(np.dot(resid, resid))
    ss_tot = float(np.dot(ya - ym, ya - ym))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LinearFit(intercept=intercept, slope=slope, r2=r2, n=int(xa.size))
