"""Experiment metrics: accuracy time-series and the paper's three measures.

The evaluation (paper §5.1.3) uses three performance metrics:

1. model accuracy reached within a given training time,
2. training time until a target accuracy is reached (accuracy sampled
   every 20 iterations),
3. final accuracy once the model has fully converged.

This module implements those measures over ``TimeSeries`` recordings plus
the mean / 95% confidence-interval aggregation the paper applies across
three runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "TimeSeries",
    "accuracy_at_time",
    "time_to_accuracy",
    "detect_convergence",
    "mean_and_ci95",
]


@dataclass
class TimeSeries:
    """An append-only ``(time, value)`` series.

    Times must be non-decreasing (simulated clocks never run backwards);
    violating appends raise immediately so bugs surface at the source.
    """

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        """Record ``v`` at time ``t`` (times must not decrease)."""
        if self.times and t < self.times[-1] - 1e-12:
            raise ValueError(
                f"non-monotonic time append: {t} after {self.times[-1]}"
            )
        self.times.append(float(t))
        self.values.append(float(v))

    def __len__(self) -> int:
        return len(self.times)

    def __bool__(self) -> bool:
        return bool(self.times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The series as ``(times, values)`` float arrays."""
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)

    def last(self) -> tuple[float, float]:
        """The most recent ``(time, value)`` sample."""
        if not self.times:
            raise IndexError("empty time series")
        return self.times[-1], self.values[-1]

    def max_value(self) -> float:
        """Largest value observed so far."""
        if not self.values:
            raise IndexError("empty time series")
        return max(self.values)

    def value_at(self, t: float) -> float:
        """Last-observation-carried-forward value at time ``t``."""
        if not self.times:
            raise IndexError("empty time series")
        idx = int(np.searchsorted(np.asarray(self.times), t, side="right")) - 1
        if idx < 0:
            return self.values[0]
        return self.values[idx]


def accuracy_at_time(series: TimeSeries, t: float) -> float:
    """Paper metric 1: accuracy achieved by training time ``t``.

    Uses the best accuracy observed up to ``t`` (the paper reports the
    model quality attained within the budget, which is monotone).
    """
    times, values = series.as_arrays()
    mask = times <= t + 1e-12
    if not mask.any():
        return 0.0
    return float(values[mask].max())


def time_to_accuracy(series: TimeSeries, target: float) -> float | None:
    """Paper metric 2: first time at which accuracy ``>= target``.

    Returns ``None`` when the target is never reached within the series.
    """
    times, values = series.as_arrays()
    hits = np.nonzero(values >= target - 1e-12)[0]
    if hits.size == 0:
        return None
    return float(times[hits[0]])


def detect_convergence(
    series: TimeSeries,
    *,
    window: int = 10,
    tolerance: float = 0.002,
) -> tuple[float, float] | None:
    """Paper metric 3: the plateau of a "fully converged" run.

    A run is converged at the first sample index ``i`` such that the best
    accuracy in the trailing ``window`` samples improves on the best
    accuracy before the window by less than ``tolerance``. Returns
    ``(time, accuracy)`` of the plateau, or ``None`` if no plateau exists
    within the recording.
    """
    times, values = series.as_arrays()
    if values.size < 2 * window:
        return None
    running_best = np.maximum.accumulate(values)
    for i in range(window, values.size):
        if running_best[i] - running_best[i - window] < tolerance:
            return float(times[i]), float(running_best[i])
    return None


# Two-sided 97.5% Student-t quantiles for small n (index = degrees of freedom).
_T975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
}


def mean_and_ci95(samples: Sequence[float] | Iterable[float]) -> tuple[float, float]:
    """Mean and 95% confidence half-width over independent runs.

    The paper reports "the average of three runs and error bars mark 95%
    confidence interval"; with n <= 11 we use the exact Student-t
    quantile, falling back to 1.96 for larger n.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("no samples")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    tq = _T975.get(arr.size - 1, 1.96)
    return mean, tq * sem
