"""Deterministic random-number management.

Every stochastic decision in the reproduction flows from a single integer
seed. Components never share a generator: each named component receives
its own :class:`numpy.random.Generator` derived with ``SeedSequence.spawn``
semantics, so adding a new consumer never perturbs the random streams of
existing ones (a requirement for bit-reproducible experiment sweeps).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["spawn_rng", "RngPool"]


def _stable_key_entropy(key: str) -> int:
    """Map a string key to a stable 64-bit integer.

    Python's builtin ``hash`` is salted per process, so it cannot be used
    for reproducible streams; we use BLAKE2 instead.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def spawn_rng(seed: int, key: str) -> np.random.Generator:
    """Create an independent generator for ``(seed, key)``.

    The same pair always yields the same stream; distinct keys yield
    statistically independent streams.
    """
    ss = np.random.SeedSequence([seed & 0xFFFFFFFFFFFFFFFF, _stable_key_entropy(key)])
    return np.random.default_rng(ss)


class RngPool:
    """A registry of named generators derived from one root seed.

    Example
    -------
    >>> pool = RngPool(seed=7)
    >>> a = pool.get("worker/0/data")
    >>> b = pool.get("worker/1/data")
    >>> a is pool.get("worker/0/data")   # cached
    True
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, key: str) -> np.random.Generator:
        """Return the (cached) generator for ``key``."""
        gen = self._cache.get(key)
        if gen is None:
            gen = spawn_rng(self._seed, key)
            self._cache[key] = gen
        return gen

    def fresh(self, key: str) -> np.random.Generator:
        """Return a *new* generator for ``key``, resetting any cached one."""
        gen = spawn_rng(self._seed, key)
        self._cache[key] = gen
        return gen

    def child(self, prefix: str) -> "RngPool":
        """A pool whose keys are namespaced under ``prefix``."""
        return _PrefixedRngPool(self, prefix)


class _PrefixedRngPool(RngPool):
    """View over a parent pool with a key prefix (shares the cache)."""

    def __init__(self, parent: RngPool, prefix: str):
        self._parent = parent
        self._prefix = prefix.rstrip("/")
        self._seed = parent.seed

    def get(self, key: str) -> np.random.Generator:  # type: ignore[override]
        return self._parent.get(f"{self._prefix}/{key}")

    def fresh(self, key: str) -> np.random.Generator:  # type: ignore[override]
        return self._parent.fresh(f"{self._prefix}/{key}")

    def child(self, prefix: str) -> "RngPool":  # type: ignore[override]
        return _PrefixedRngPool(self._parent, f"{self._prefix}/{prefix}")
