"""Shared utilities: deterministic RNG management, regression, metrics.

These modules are deliberately dependency-light so that every other
subpackage (``repro.nn``, ``repro.cluster``, ``repro.core``) can build on
them without import cycles.
"""

from repro.utils.rng import RngPool, spawn_rng
from repro.utils.linreg import LinearFit, fit_line
from repro.utils.metrics import (
    TimeSeries,
    accuracy_at_time,
    time_to_accuracy,
    detect_convergence,
    mean_and_ci95,
)

__all__ = [
    "RngPool",
    "spawn_rng",
    "LinearFit",
    "fit_line",
    "TimeSeries",
    "accuracy_at_time",
    "time_to_accuracy",
    "detect_convergence",
    "mean_and_ci95",
]
