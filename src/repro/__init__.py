"""repro — a reproduction of *DLion: Decentralized Distributed Deep
Learning in Micro-Clouds* (Hong & Chandra, HPDC 2021).

Quick start::

    from repro import TrainConfig, TrainingEngine, ClusterTopology

    topo = ClusterTopology.build(cores=[24, 24, 12, 12, 6, 6],
                                 bandwidth=[50, 50, 35, 35, 20, 20])
    engine = TrainingEngine(TrainConfig(system="dlion"), topo, seed=0)
    result = engine.run(horizon=300.0)
    print(result.final_mean_accuracy())

Subpackages: :mod:`repro.nn` (the NumPy DL substrate),
:mod:`repro.cluster` (the micro-cloud simulator), :mod:`repro.core`
(DLion's techniques and engine), :mod:`repro.baselines` (Baseline, Ako,
Gaia, Hop), :mod:`repro.experiments` (Table 3 environments and the
per-figure drivers).
"""

from repro.cluster.topology import ClusterTopology
from repro.core.config import (
    DktConfig,
    GbsConfig,
    LbsConfig,
    MaxNConfig,
    TrainConfig,
)
from repro.core.engine import RunResult, TrainingEngine

__version__ = "1.0.0"

__all__ = [
    "ClusterTopology",
    "TrainConfig",
    "GbsConfig",
    "LbsConfig",
    "MaxNConfig",
    "DktConfig",
    "TrainingEngine",
    "RunResult",
    "__version__",
]
