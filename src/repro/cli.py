"""Command-line interface.

Seven subcommands::

    repro-dlion list                         # environments, systems, figures
    repro-dlion run  --environment "Hetero SYS A" --system dlion
    repro-dlion compare --environment "Homo B" --systems dlion,ako,gaia
    repro-dlion figure fig11                 # regenerate one paper figure
    repro-dlion report run.trace.json        # summarize a recorded trace
    repro-dlion status ./statusdir           # read a live run's snapshot
    repro-dlion selftest                     # ~10 s install verification

``run`` and ``compare`` accept ``--horizon`` (simulated seconds; default
is the workload's scaled paper horizon) and ``--seed``. ``run`` also
takes ``--env-file`` (custom cluster JSON), ``--churn`` (elastic
membership events), ``--chaos`` (a unified fault-plan JSON — scripted
crashes/restarts and link faults; both backends, see
docs/robustness.md), ``--output``/``--csv`` (result export), and the
observability flags ``--trace`` (Chrome-trace JSON, viewable in
Perfetto), ``--metrics-out`` (metrics registry JSON), and ``--profile``
(wall-clock profile of the simulator itself). ``run --backend proc``
executes the same job as real worker processes over a loopback TCP mesh
(``--speedup`` maps modelled seconds to wall time, ``--workers``
truncates the environment, ``--checkpoint-dir``/``--checkpoint-interval``
enable crash checkpoints; see docs/architecture.md); its telemetry
plane adds ``--stats-interval`` (periodic one-line cluster-health
prints), ``--status-dir`` (an atomically-replaced ``live_status.json``
that ``repro-dlion status`` — optionally ``--watch`` — reads from
outside the run), and ``--ship-interval`` (worker telemetry-delta
cadence; see docs/observability.md). ``report`` also summarizes a
``--metrics-out`` dump via ``--metrics`` (histogram p50/p95/p99
tables). All output is plain text;
benchmark archives land under ``benchmarks/results/`` when figures are
run through pytest instead.
"""

from __future__ import annotations

import argparse
import os
import sys

__all__ = ["main", "build_parser"]

# BLAS pools honour these only if set before numpy's first import, which
# is why main() pre-scans argv instead of waiting for argparse (argparse
# itself needs the environment/figure registries, which import numpy).
_BLAS_ENV_VARS = (
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "OMP_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def _prescan_compute_threads(argv: list[str]) -> int | None:
    """Extract ``--compute-threads N`` from raw argv, tolerating junk.

    Runs before any heavy import; malformed values are left for argparse
    to reject with a proper message.
    """
    value: str | None = None
    for i, arg in enumerate(argv):
        if arg == "--compute-threads" and i + 1 < len(argv):
            value = argv[i + 1]
        elif arg.startswith("--compute-threads="):
            value = arg.split("=", 1)[1]
    if value is None:
        return None
    try:
        return int(value)
    except ValueError:
        return None


def _pin_blas_pools() -> None:
    """Pin BLAS to one thread per call (our pool supplies the parallelism).

    ``setdefault`` so an operator's explicit environment always wins.
    Without this, N pool threads each fanning out to an OpenBLAS pool of
    ``cores`` threads would oversubscribe the machine N*cores-fold.
    """
    for var in _BLAS_ENV_VARS:
        os.environ.setdefault(var, "1")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (list / run / compare / figure / selftest)."""
    from repro.experiments import figures as figures_mod
    from repro.experiments.environments import ENVIRONMENTS
    from repro.experiments.runner import SYSTEM_VARIANTS

    _FIGURES = list(figures_mod.__all__)
    parser = argparse.ArgumentParser(
        prog="repro-dlion",
        description="Reproduction of DLion (HPDC '21): decentralized "
        "distributed deep learning in micro-clouds.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list environments, system variants, and figures")

    run_p = sub.add_parser("run", help="run one system in one environment")
    run_p.add_argument("--environment", "-e", choices=sorted(ENVIRONMENTS),
                       help="a Table 3 preset (or use --env-file)")
    run_p.add_argument("--env-file", help="custom environment JSON (see docs/api.md)")
    run_p.add_argument("--output", help="write the full result as JSON to this path")
    run_p.add_argument("--csv", help="write per-worker accuracy samples as CSV")
    run_p.add_argument("--system", "-s", default="dlion", choices=SYSTEM_VARIANTS)
    run_p.add_argument("--backend", choices=("sim", "proc"), default="sim",
                       help="sim = in-process discrete-event simulator; "
                       "proc = one OS process per worker over a loopback "
                       "TCP mesh (see docs/architecture.md)")
    run_p.add_argument("--speedup", type=float, default=20.0,
                       help="proc backend: modelled seconds per wall-clock "
                       "second (default 20)")
    run_p.add_argument("--overlay", metavar="SPEC", default=None,
                       help="sim backend: sparse exchange overlay — full, "
                       "ring, star, kregular:K, hier:G or hier:G:full "
                       "(default: the paper's full mesh)")
    run_p.add_argument("--workers", type=int, default=None,
                       help="truncate the environment to its first N workers")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--horizon", type=float, default=None,
                       help="simulated seconds (default: scaled paper horizon)")
    run_p.add_argument("--target", type=float, default=0.70,
                       help="accuracy target for the time-to-accuracy metric")
    run_p.add_argument(
        "--churn",
        action="append",
        default=[],
        metavar="TIME:WORKER:ACTION",
        help="elastic-membership event, e.g. --churn 100:0:leave "
        "--churn 200:0:join (repeatable)",
    )
    run_p.add_argument(
        "--chaos",
        metavar="FILE",
        help="unified fault plan JSON (crashes/restarts + link faults; "
        "both backends, modelled-time schedule; see docs/robustness.md)",
    )
    run_p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="proc backend: directory for periodic worker checkpoints "
        "(enables crash recovery; see docs/robustness.md)",
    )
    run_p.add_argument(
        "--checkpoint-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="proc backend: modelled seconds between checkpoints "
        "(default 5; requires --checkpoint-dir)",
    )
    run_p.add_argument(
        "--stats-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="proc backend: print a one-line cluster-health summary "
        "every N wall seconds",
    )
    run_p.add_argument(
        "--status-dir",
        metavar="DIR",
        help="proc backend: maintain an atomically-updated "
        "live_status.json in DIR for `repro-dlion status`",
    )
    run_p.add_argument(
        "--ship-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="proc backend: wall seconds between worker telemetry-delta "
        "shipments (default 1; bounds what a crash can lose)",
    )
    run_p.add_argument(
        "--shm-lanes",
        action="store_true",
        help="proc backend: carry data channels between co-hosted "
        "workers over shared-memory rings instead of TCP sockets "
        "(modelled bandwidth still enforced; see docs/architecture.md)",
    )
    run_p.add_argument("--trace", metavar="PATH",
                       help="write a Chrome-trace JSON of the run "
                       "(load in Perfetto / chrome://tracing)")
    run_p.add_argument("--metrics-out", metavar="PATH",
                       help="write the metrics registry as JSON")
    run_p.add_argument("--profile", action="store_true",
                       help="print a wall-clock profile of the simulator itself")
    run_p.add_argument("--compute-threads", type=int, default=None,
                       help="threads for the parallel compute stage "
                       "(sim backend; default min(workers, cores); results "
                       "are byte-identical for any value; 1 = fully serial)")

    cmp_p = sub.add_parser("compare", help="run several systems in one environment")
    cmp_p.add_argument("--environment", "-e", required=True, choices=sorted(ENVIRONMENTS))
    cmp_p.add_argument("--systems", default="dlion,baseline,ako,gaia,hop",
                       help="comma-separated system variants")
    cmp_p.add_argument("--seed", type=int, default=0)
    cmp_p.add_argument("--horizon", type=float, default=None)

    fig_p = sub.add_parser("figure", help="regenerate one paper table/figure")
    fig_p.add_argument("name", choices=_FIGURES,
                       help="e.g. fig11, fig09a, table1")

    rep_p = sub.add_parser(
        "report",
        help="summarize a trace written by run --trace and/or a "
        "metrics dump written by run --metrics-out",
    )
    rep_p.add_argument("trace", nargs="?", default=None,
                       help="path to a Chrome-trace JSON file")
    rep_p.add_argument("--metrics", metavar="PATH",
                       help="metrics registry JSON (--metrics-out dump): "
                       "print histogram p50/p95/p99 tables")

    st_p = sub.add_parser(
        "status",
        help="read the live_status.json a `run --status-dir` maintains",
    )
    st_p.add_argument("dir", help="the --status-dir of a running live job")
    st_p.add_argument("--watch", action="store_true",
                      help="re-render until interrupted")
    st_p.add_argument("--interval", type=float, default=2.0,
                      help="seconds between --watch refreshes (default 2)")

    sub.add_parser("selftest", help="quick installation self-test (~1 min)")
    return parser


def _cmd_list() -> int:
    from repro.experiments import figures as figures_mod
    from repro.experiments.environments import ENVIRONMENTS
    from repro.experiments.runner import SYSTEM_VARIANTS

    _FIGURES = list(figures_mod.__all__)
    print("environments (paper Table 3):")
    for env in ENVIRONMENTS.values():
        print(f"  {env.name:15s} [{env.platform}] {env.description}")
    print("\nsystem variants:")
    for variant in SYSTEM_VARIANTS:
        print(f"  {variant}")
    print("\nfigures / tables (repro-dlion figure <name>):")
    print("  " + ", ".join(_FIGURES))
    return 0


def _parse_churn(entries: list[str], n_workers: int = 6):
    if not entries:
        return None
    from repro.cluster.membership import MembershipSchedule

    events = []
    for entry in entries:
        try:
            time_s, worker_s, action = entry.split(":")
            events.append((float(time_s), int(worker_s), action))
        except ValueError as exc:
            raise SystemExit(f"bad --churn entry {entry!r}: {exc}")
    return MembershipSchedule(events, n_workers=n_workers)


def _make_obs(args: argparse.Namespace):
    """Tracer / metrics registry / profiler per the run flags (or Nones)."""
    tracer = metrics = profiler = None
    if getattr(args, "trace", None):
        from repro.obs.trace import Tracer

        tracer = Tracer()
    if getattr(args, "metrics_out", None):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    if getattr(args, "profile", False):
        from repro.obs.profile import Profiler

        profiler = Profiler()
    return tracer, metrics, profiler


def _build_run_setup(args: argparse.Namespace):
    """Resolve ``(config, topology, default_horizon)`` for a run.

    Shared by both backends: the same config and topology drive either
    the in-process simulator or the multi-process live runtime, so a
    ``--backend proc`` run trains the exact model the simulation models.
    """
    from repro.experiments.runner import build_config

    if args.env_file:
        from repro.cluster.topology import ClusterTopology
        from repro.cluster.traces import PiecewiseTrace
        from repro.experiments.envfile import load_environment
        from repro.experiments.runner import cpu_workload, gpu_workload

        spec, cores, bandwidths = load_environment(args.env_file)
        workload = gpu_workload() if spec.platform == "gpu" else cpu_workload()
        ws = workload.wire_scale()

        def scale(bw):
            if isinstance(bw, (int, float)):
                return float(bw) * ws
            # trace: rebuild with scaled levels
            segments = [(t, v * ws) for t, v in zip(bw._times, bw._values)]
            return PiecewiseTrace(segments)

        topo = ClusterTopology.build(
            cores=cores,
            bandwidth=[scale(b) for b in bandwidths],
            per_core_rate=workload.per_unit_rate,
            overhead=workload.overhead,
        )
        print(f"custom environment: {spec.name} ({topo.n_workers} workers)")
    else:
        from repro.experiments.environments import get_environment
        from repro.experiments.runner import build_topology, workload_for

        env = get_environment(args.environment)
        workload = workload_for(env)
        topo = build_topology(env, workload, n_workers=args.workers)
    return build_config(args.system, workload), topo, workload.horizon()


def _live_profile_report(metrics) -> str:
    """Render the merged per-scope wall-clock totals of a live run."""
    seconds = metrics.get("profile_seconds_total")
    calls = metrics.get("profile_calls_total")
    call_map = dict(calls.items()) if calls is not None else {}
    rows = []
    if seconds is not None:
        for key, total in sorted(seconds.items(), key=lambda kv: -kv[1]):
            rows.append(
                f"  {key[0]:<28s} {int(call_map.get(key, 0)):>9d} {total:>11.3f}"
            )
    header = f"  {'scope':<28s} {'calls':>9s} {'seconds':>11s}"
    return "\n".join(
        ["wall-clock profile (summed across worker processes)", header, *rows]
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if bool(args.environment) == bool(args.env_file):
        print("exactly one of --environment / --env-file is required", file=sys.stderr)
        return 2
    if args.env_file and args.workers is not None:
        print("--workers applies only to preset environments", file=sys.stderr)
        return 2
    if args.backend == "proc" and args.overlay:
        print(
            "--overlay is a simulator feature; the proc backend exchanges "
            "over the full mesh",
            file=sys.stderr,
        )
        return 2
    if args.backend == "proc" and args.churn:
        print(
            "--churn is a simulator feature; with --backend proc, script "
            "crashes with --chaos instead",
            file=sys.stderr,
        )
        return 2
    if args.backend != "proc" and (
        args.checkpoint_dir or args.checkpoint_interval is not None
    ):
        print(
            "--checkpoint-dir/--checkpoint-interval apply only to "
            "--backend proc",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_interval is not None and not args.checkpoint_dir:
        print("--checkpoint-interval requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.backend != "proc" and (
        args.stats_interval is not None
        or args.status_dir
        or args.ship_interval is not None
        or args.shm_lanes
    ):
        print(
            "--stats-interval/--status-dir/--ship-interval/--shm-lanes "
            "apply only to --backend proc",
            file=sys.stderr,
        )
        return 2
    for name, value in (
        ("--stats-interval", args.stats_interval),
        ("--ship-interval", args.ship_interval),
    ):
        if value is not None and value <= 0:
            print(f"{name} must be positive", file=sys.stderr)
            return 2
    chaos = None
    if args.chaos:
        from repro.cluster.chaos import ChaosPlan

        try:
            chaos = ChaosPlan.from_file(args.chaos)
        except (OSError, ValueError) as exc:
            print(f"bad --chaos plan: {exc}", file=sys.stderr)
            return 2
    # Fail on unwritable export paths *before* spending minutes simulating.
    import pathlib

    for path_arg in (args.trace, args.metrics_out, args.output, args.csv):
        if path_arg and not pathlib.Path(path_arg).resolve().parent.is_dir():
            print(f"output directory does not exist: {path_arg}", file=sys.stderr)
            return 2
    tracer, metrics, profiler = _make_obs(args)
    config, topo, default_horizon = _build_run_setup(args)
    peer_graph = None
    if args.overlay:
        from repro.cluster.peergraph import PeerGraph

        try:
            peer_graph = PeerGraph.from_spec(args.overlay, topo.n_workers)
        except ValueError as exc:
            print(f"bad --overlay: {exc}", file=sys.stderr)
            return 2
    membership = _parse_churn(args.churn, n_workers=topo.n_workers)
    if chaos is not None:
        # Mirror the --churn validation: worker ids and link endpoints
        # must exist in *this* cluster, and the failure must name the
        # offender, not surface later as a no-op or a hang.
        try:
            chaos.validate(topo.n_workers)
        except ValueError as exc:
            print(f"bad --chaos plan: {exc}", file=sys.stderr)
            return 2
    horizon = args.horizon if args.horizon is not None else default_horizon
    compute_threads = args.compute_threads
    if compute_threads is None:
        compute_threads = min(topo.n_workers, os.cpu_count() or 1)
    if compute_threads < 1:
        print("--compute-threads must be >= 1", file=sys.stderr)
        return 2
    if compute_threads > 1:
        # The environment was pinned in main() before numpy loaded;
        # report the effective setting once so runs are auditable.
        blas = os.environ.get("OPENBLAS_NUM_THREADS", "unset")
        print(
            f"compute threads: {compute_threads} "
            f"(BLAS threads per call: {blas}; results are "
            "byte-identical to --compute-threads 1)"
        )
    if args.backend == "proc":
        from repro.core.live_engine import LiveEngine

        checkpoint = None
        if args.checkpoint_dir:
            from repro.transport.checkpoint import CheckpointConfig

            try:
                checkpoint = CheckpointConfig(
                    directory=args.checkpoint_dir,
                    interval_s=(
                        args.checkpoint_interval
                        if args.checkpoint_interval is not None
                        else 5.0
                    ),
                )
            except ValueError as exc:
                print(f"bad checkpoint settings: {exc}", file=sys.stderr)
                return 2
        engine = LiveEngine(
            config,
            topo,
            seed=args.seed,
            speedup=args.speedup,
            tracer=tracer,
            metrics=metrics,
            profile=args.profile,
            compute_threads=compute_threads,
            checkpoint=checkpoint,
            ship_interval_s=(
                args.ship_interval if args.ship_interval is not None else 1.0
            ),
            stats_interval_s=args.stats_interval,
            status_dir=args.status_dir,
            shm_lanes=args.shm_lanes,
        )
        result = engine.run(horizon, chaos=chaos)
    else:
        from repro.core.engine import TrainingEngine

        try:
            sim = TrainingEngine(
                config,
                topo,
                seed=args.seed,
                membership=membership,
                tracer=tracer,
                metrics=metrics,
                profiler=profiler,
                compute_threads=compute_threads,
                chaos=chaos,
                peer_graph=peer_graph,
            )
        except ValueError as exc:
            # e.g. a chaos plan whose crash narrative conflicts with the
            # --churn schedule, or drops the cluster below two workers.
            print(f"invalid run configuration: {exc}", file=sys.stderr)
            return 2
        result = sim.run(horizon)
    print(f"environment    : {args.environment or args.env_file}")
    print(f"system         : {args.system}")
    print(f"simulated time : {result.horizon:.0f} s")
    print(f"iterations     : {result.iterations}")
    print(f"epochs         : {result.epochs:.2f}")
    print(f"accuracy       : {result.final_mean_accuracy():.3f}")
    print(f"worker std     : {result.accuracy_deviation_at(result.horizon):.4f}")
    t = result.time_to_accuracy(args.target)
    print(f"time to {args.target:.0%}    : {'not reached' if t is None else f'{t:.1f} s'}")
    print(f"bytes on wire  : {sum(result.link_bytes.values()) / 1e6:.1f} MB")
    print(f"DKT merges     : {result.dkt_merges}")
    if len(result.active_workers) > 1:
        steps = ", ".join(
            f"{t:.0f}s->{int(n)}"
            for t, n in zip(result.active_workers.times, result.active_workers.values)
        )
        print(f"active workers : {steps}")
    if args.output:
        from repro.experiments.export import write_json

        write_json(result, args.output)
        print(f"result JSON    : {args.output}")
    if args.csv:
        from repro.experiments.export import write_accuracy_csv

        write_accuracy_csv(result, args.csv)
        print(f"accuracy CSV   : {args.csv}")
    if tracer is not None:
        tracer.write(args.trace)
        print(f"trace          : {args.trace}")
    if metrics is not None:
        metrics.write(args.metrics_out)
        print(f"metrics JSON   : {args.metrics_out}")
    if args.profile:
        print()
        if args.backend == "proc":
            print(_live_profile_report(result.metrics))
        else:
            print(profiler.report())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table
    from repro.experiments.runner import SYSTEM_VARIANTS, RunSpec, run_experiment

    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    unknown = [s for s in systems if s not in SYSTEM_VARIANTS]
    if unknown:
        print(f"unknown systems: {unknown}", file=sys.stderr)
        return 2
    rows = []
    for system in systems:
        result = run_experiment(
            RunSpec(
                environment=args.environment,
                system=system,
                seed=args.seed,
                horizon=args.horizon,
            )
        )
        rows.append(
            [
                system,
                result.final_mean_accuracy(),
                result.accuracy_deviation_at(result.horizon),
                min(result.iterations),
                round(sum(result.link_bytes.values()) / 1e6, 1),
            ]
        )
    print(f"environment: {args.environment}")
    print(format_table(["system", "accuracy", "worker std", "min iters", "MB"], rows))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import figures as figures_mod

    driver = getattr(figures_mod, args.name)
    print(driver().render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.trace_report import (
        load_metrics,
        load_trace,
        render_metrics_report,
        render_report,
    )

    if not args.trace and not args.metrics:
        print("give a trace file and/or --metrics PATH", file=sys.stderr)
        return 2
    if args.trace:
        try:
            events = load_trace(args.trace)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read trace: {exc}", file=sys.stderr)
            return 2
        print(render_report(events))
    if args.metrics:
        try:
            dump = load_metrics(args.metrics)
        except (OSError, ValueError) as exc:
            print(f"cannot read metrics dump: {exc}", file=sys.stderr)
            return 2
        if args.trace:
            print()
        print(render_metrics_report(dump))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.live_status import read_snapshot, render_snapshot

    if args.watch:
        try:
            while True:
                snap = read_snapshot(args.dir)
                if snap is None:
                    print(f"(no live status snapshot in {args.dir} yet)")
                else:
                    print(render_snapshot(snap))
                _time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0
    snap = read_snapshot(args.dir)
    if snap is None:
        print(f"no live status snapshot in {args.dir}", file=sys.stderr)
        return 1
    print(render_snapshot(snap))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = sys.argv[1:] if argv is None else argv
    threads = _prescan_compute_threads(raw)
    if threads is not None and threads > 1:
        _pin_blas_pools()
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "selftest":
        from repro.selftest import run_selftest

        return 1 if run_selftest() else 0
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
