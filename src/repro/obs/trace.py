"""Event tracer: spans + instants in simulated time, Chrome trace JSON.

The tracer records what the simulation did and *when in simulated
seconds* it did it, in the Chrome trace event format — load the output
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``. The
mapping chosen here:

* one trace **process** per worker (pid = worker id, named
  ``worker <id>``), plus one pseudo-process for cluster-wide events
  (GBS changes, membership churn);
* one **thread** per subsystem inside each worker — iteration compute,
  sync-gate waits, outgoing network transfers, the DKT protocol, and
  the batch-size control plane (see the ``TID_*`` constants);
* simulated seconds map to trace microseconds (``ts = t * 1e6``), so
  the viewer's time axis reads directly in simulated time.

Everything is recorded through four primitives: :meth:`Tracer.complete`
(a span with an explicit start and duration — simulated time is known
exactly, so there is no begin/end pairing), :meth:`Tracer.instant`,
:meth:`Tracer.counter` (a numeric timeline, rendered as a track), and
the process/thread naming metadata.

:data:`NULL_TRACER` is the default wired into the engine: every method
is a no-op and ``enabled`` is ``False``, so instrumentation sites guard
argument construction with ``if tracer.enabled:`` and the untraced hot
path pays a single attribute check.

The tracer is deterministic: it never reads wall time, and events are
kept in emission order, so two runs of the same ``(config, topology,
seed)`` produce byte-identical output.

Concurrency audit (parallel compute stage): unlike the profiler, the
tracer holds **no** module-global active state — every instrumentation
site reaches its tracer through an explicit reference (``engine.tracer``
/ ``worker.tracer``), so there is nothing to leak across threads.
Emission itself is single-threaded by construction: all trace calls
happen inside event handlers on the event-loop thread, and the compute
pool's speculative ``loss_and_grads`` path contains no trace sites.
This is what keeps trace output byte-identical across
``--compute-threads`` settings (the determinism suite asserts it).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TID_ITER",
    "TID_SYNC",
    "TID_NET",
    "TID_DKT",
    "TID_CTRL",
    "THREAD_NAMES",
]

# Per-worker subsystem threads. Fixed ids keep traces comparable across
# runs and give the report tool stable group keys.
TID_ITER = 0  # gradient-computation iterations
TID_SYNC = 1  # sync-gate wait intervals
TID_NET = 2  # outgoing link transfers
TID_DKT = 3  # direct-knowledge-transfer protocol rounds
TID_CTRL = 4  # batch-size / control-plane activity

THREAD_NAMES: Mapping[int, str] = {
    TID_ITER: "iterate",
    TID_SYNC: "sync-wait",
    TID_NET: "net-out",
    TID_DKT: "dkt",
    TID_CTRL: "control",
}


def _us(t_s: float) -> float:
    """Simulated seconds -> trace microseconds (ns-rounded for stability)."""
    return round(t_s * 1e6, 3)


class Tracer:
    """Collects Chrome-trace events over one simulation run."""

    enabled = True

    def __init__(self) -> None:
        # Metadata first so viewers name processes before any event.
        self._meta: list[dict] = []
        self._events: list[dict] = []
        self._named: set[tuple] = set()

    # -- naming --------------------------------------------------------
    def set_process_name(self, pid: int, name: str) -> None:
        """Name a trace process (one per worker / the cluster)."""
        key = ("p", pid)
        if key in self._named:
            return
        self._named.add(key)
        self._meta.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        """Name a subsystem thread inside a process."""
        key = ("t", pid, tid)
        if key in self._named:
            return
        self._named.add(key)
        self._meta.append(
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
             "args": {"name": name}}
        )

    # -- events --------------------------------------------------------
    def complete(
        self,
        name: str,
        pid: int,
        tid: int,
        start_s: float,
        dur_s: float,
        *,
        cat: str = "sim",
        args: dict[str, Any] | None = None,
    ) -> None:
        """A span ``[start_s, start_s + dur_s]`` in simulated seconds."""
        ev = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "pid": pid,
            "tid": tid,
            "ts": _us(start_s),
            "dur": _us(max(dur_s, 0.0)),
        }
        if args:
            ev["args"] = args
        self._events.append(ev)

    def instant(
        self,
        name: str,
        pid: int,
        tid: int,
        t_s: float,
        *,
        cat: str = "sim",
        args: dict[str, Any] | None = None,
        scope: str = "t",
    ) -> None:
        """A zero-duration marker (``scope``: t=thread, p=process, g=global)."""
        ev = {
            "ph": "i",
            "name": name,
            "cat": cat,
            "pid": pid,
            "tid": tid,
            "ts": _us(t_s),
            "s": scope,
        }
        if args:
            ev["args"] = args
        self._events.append(ev)

    def counter(
        self, name: str, pid: int, t_s: float, values: Mapping[str, float]
    ) -> None:
        """A sample on a numeric timeline (GBS / LBS / queue depth)."""
        self._events.append(
            {"ph": "C", "name": name, "pid": pid, "tid": 0, "ts": _us(t_s),
             "args": dict(values)}
        )

    # -- merging -------------------------------------------------------
    def ingest(self, events: list[dict]) -> None:
        """Fold another tracer's :meth:`events` output into this one.

        Used by the live backend to merge per-process child traces into
        the parent's document. Metadata records (``ph == "M"``) are
        deduplicated by (kind, pid[, tid]) like locally-emitted naming;
        everything else is appended in the given order.
        """
        for ev in events:
            if ev.get("ph") == "M":
                if ev.get("name") == "process_name":
                    key = ("p", ev["pid"])
                elif ev.get("name") == "thread_name":
                    key = ("t", ev["pid"], ev.get("tid", 0))
                else:
                    self._meta.append(ev)
                    continue
                if key in self._named:
                    continue
                self._named.add(key)
                self._meta.append(ev)
            else:
                self._events.append(ev)

    # -- export --------------------------------------------------------
    def events(self) -> list[dict]:
        """All recorded events, metadata first, in emission order."""
        return self._meta + self._events

    def delta_events(self, cursor: int) -> tuple[list[dict], int]:
        """Events recorded since ``cursor``, plus the new cursor.

        The incremental counterpart of :meth:`events`, used by the live
        backend's delta shipping: each call returns every non-metadata
        event appended since the previous cursor, prefixed with the
        *full* metadata list (ingest deduplicates metadata, so resending
        it is idempotent and keeps any partial stream self-describing).
        Pass ``0`` for the first call and the returned cursor thereafter.
        """
        fresh = self._events[cursor:]
        if not fresh:
            return [], len(self._events)
        return self._meta + fresh, len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def to_json(self) -> dict:
        """The full Chrome-trace document."""
        return {"displayTimeUnit": "ms", "traceEvents": self.events()}

    def dumps(self) -> str:
        """The trace serialized as a JSON string (deterministic bytes)."""
        return json.dumps(self.to_json(), separators=(",", ":"))

    def write(self, path: str | pathlib.Path) -> None:
        """Write the trace JSON to ``path``."""
        pathlib.Path(path).write_text(self.dumps())


class NullTracer:
    """The default tracer: records nothing, costs one attribute check."""

    enabled = False

    def set_process_name(self, pid: int, name: str) -> None:
        """No-op."""

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        """No-op."""

    def complete(self, *a, **kw) -> None:
        """No-op."""

    def instant(self, *a, **kw) -> None:
        """No-op."""

    def counter(self, *a, **kw) -> None:
        """No-op."""

    def events(self) -> list[dict]:
        """Always empty."""
        return []

    def delta_events(self, cursor: int) -> tuple[list[dict], int]:
        """Always empty; the cursor never advances."""
        return [], 0

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
