"""Metrics registry: named counters, gauges, and histograms with labels.

Prometheus-flavoured but dependency-free. A :class:`MetricsRegistry`
owns the metric families; each family carries a fixed tuple of label
names and stores one value (or histogram state) per observed label-value
combination. Label values may be any hashable (worker ids stay ints
internally); they are stringified only on export.

The engine records its run accounting here — ``grad_bytes_total``,
``sync_wait_seconds_total``, ``maxn_chosen_n``, … (the full catalog is
in ``docs/observability.md``) — and :class:`~repro.core.engine.RunResult`
reads its ``link_bytes`` / ``compute_time`` / ``wait_time`` accessors
back out of the registry, so a ``--metrics-out`` dump and the in-process
result can never disagree.
"""

from __future__ import annotations

import json
import pathlib
from bisect import bisect_left
from typing import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "percentile_from_buckets",
    "percentile_from_sample",
]

# Latency-flavoured default buckets (seconds); +inf is implicit.
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0
)

# Percentiles included in every histogram export (p50/p95/p99 keys).
EXPORT_PERCENTILES = (0.50, 0.95, 0.99)


def percentile_from_buckets(
    edges: Sequence[float],
    cumulative: Sequence[int],
    q: float,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float | None:
    """Estimate the ``q``-quantile from cumulative bucket counts.

    ``edges`` are the finite upper bucket bounds; ``cumulative`` has one
    entry per edge plus a final entry for the implicit ``+inf`` bucket
    (so ``cumulative[-1]`` is the total observation count). Linear
    interpolation within the landing bucket, Prometheus
    ``histogram_quantile`` style; observations that land in the ``+inf``
    bucket resolve to ``maximum`` when known (else the last finite
    edge). Returns ``None`` when the series is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(cumulative) != len(edges) + 1:
        raise ValueError(
            f"cumulative counts must cover every edge plus +inf: "
            f"{len(edges)} edge(s) but {len(cumulative)} count(s)"
        )
    total = cumulative[-1]
    if total == 0:
        return None
    rank = q * total
    i = 0
    while i < len(cumulative) and cumulative[i] < rank:
        i += 1
    if i >= len(edges):  # +inf bucket: no finite upper bound to lerp to
        return maximum if maximum is not None else edges[-1]
    below = cumulative[i - 1] if i else 0
    in_bucket = cumulative[i] - below
    lower = edges[i - 1] if i else (minimum if minimum is not None else 0.0)
    upper = edges[i]
    if in_bucket <= 0:
        value = upper
    else:
        value = lower + (upper - lower) * (rank - below) / in_bucket
    if minimum is not None:
        value = max(value, minimum)
    if maximum is not None:
        value = min(value, maximum)
    return value


def percentile_from_sample(sample: dict, q: float) -> float | None:
    """Quantile from one exported histogram sample (``samples()`` form).

    Accepts the ``{"buckets": [{"le": ..., "count": ...}, ...]}`` record
    that :meth:`Histogram.samples` / ``to_dict`` emit (the ``+inf``
    entry may be the string ``"+inf"``). Lets ``report`` summarise
    metric dumps written by older runs that predate inline percentiles.
    """
    buckets = sample["buckets"]
    edges = [b["le"] for b in buckets if b["le"] != "+inf"]
    cumulative = [b["count"] for b in buckets]
    if len(cumulative) == len(edges):  # dump without an explicit +inf row
        cumulative.append(sample["count"])
    return percentile_from_buckets(
        edges, cumulative, q,
        minimum=sample.get("min"), maximum=sample.get("max"),
    )


class _Family:
    """Shared bookkeeping: name, help text, and the label schema."""

    kind = "abstract"

    def __init__(self, name: str, help: str, label_names: Sequence[str]):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)

    def _key(self, labels: tuple) -> tuple:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label value(s) "
                f"{self.label_names}, got {labels!r}"
            )
        return labels

    def _label_dict(self, key: tuple) -> dict[str, str]:
        return {n: str(v) for n, v in zip(self.label_names, key)}


class Counter(_Family):
    """A monotonically increasing sum per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Sequence[str]):
        super().__init__(name, help, label_names)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, *labels) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, *labels) -> float:
        """Current sum for one label combination (0.0 if never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    def items(self) -> Iterable[tuple[tuple, float]]:
        """``(label_values, value)`` pairs in first-seen order."""
        return self._values.items()

    def samples(self) -> list[dict]:
        """Export form: one ``{labels, value}`` record per series."""
        return [
            {"labels": self._label_dict(k), "value": v}
            for k, v in self._values.items()
        ]


class Gauge(_Family):
    """A value that can go up and down; remembers the last set value."""

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: Sequence[str]):
        super().__init__(name, help, label_names)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, *labels) -> None:
        """Set the labelled series to ``value``."""
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, *labels) -> None:
        """Adjust the labelled series by ``amount`` (may be negative)."""
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, *labels) -> float:
        """Last set value (0.0 if never set)."""
        return self._values.get(self._key(labels), 0.0)

    def items(self) -> Iterable[tuple[tuple, float]]:
        """``(label_values, value)`` pairs in first-seen order."""
        return self._values.items()

    def samples(self) -> list[dict]:
        """Export form: one ``{labels, value}`` record per series."""
        return [
            {"labels": self._label_dict(k), "value": v}
            for k, v in self._values.items()
        ]


class _HistogramState:
    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(_Family):
    """Fixed-bucket histogram (cumulative on export, like Prometheus).

    Buckets are upper edges; an implicit ``+inf`` bucket catches the
    rest. ``min``/``max``/``sum``/``count`` ride along so reports can
    print means and ranges without re-deriving them from buckets.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError(f"{self.name}: need at least one bucket edge")
        if len(set(edges)) != len(edges):
            raise ValueError(f"{self.name}: duplicate bucket edges")
        self.buckets = edges
        self._states: dict[tuple, _HistogramState] = {}

    def observe(self, value: float, *labels) -> None:
        """Record one observation into the labelled series."""
        key = self._key(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.buckets))
        # bisect_left: the first edge >= value, so edges act as inclusive
        # upper bounds (Prometheus ``le`` semantics); past the last edge
        # the index lands on the +inf slot.
        state.bucket_counts[bisect_left(self.buckets, value)] += 1
        state.count += 1
        state.sum += value
        state.min = min(state.min, value)
        state.max = max(state.max, value)

    def count(self, *labels) -> int:
        """Number of observations for one label combination."""
        state = self._states.get(self._key(labels))
        return state.count if state else 0

    def sum(self, *labels) -> float:
        """Sum of observations for one label combination."""
        state = self._states.get(self._key(labels))
        return state.sum if state else 0.0

    def mean(self, *labels) -> float:
        """Mean observation (0.0 before any observation)."""
        state = self._states.get(self._key(labels))
        if not state or state.count == 0:
            return 0.0
        return state.sum / state.count

    def items(self) -> Iterable[tuple[tuple, _HistogramState]]:
        """``(label_values, state)`` pairs in first-seen order."""
        return self._states.items()

    def _cumulative(self, st: _HistogramState) -> list[int]:
        out, running = [], 0
        for c in st.bucket_counts:
            running += c
            out.append(running)
        return out

    def percentile(self, q: float, *labels) -> float | None:
        """Estimated ``q``-quantile for one series (None if empty)."""
        state = self._states.get(self._key(labels))
        if state is None or state.count == 0:
            return None
        return percentile_from_buckets(
            self.buckets, self._cumulative(state), q,
            minimum=state.min, maximum=state.max,
        )

    def percentile_all(self, q: float) -> float | None:
        """Estimated ``q``-quantile pooled across every series.

        Bucket counts from all label combinations are summed before
        estimation — the cluster-wide view (e.g. p99 frame latency over
        every link) rather than a per-series one.
        """
        pooled = [0] * (len(self.buckets) + 1)
        lo, hi, total = float("inf"), float("-inf"), 0
        for st in self._states.values():
            for i, c in enumerate(st.bucket_counts):
                pooled[i] += c
            total += st.count
            if st.count:
                lo = min(lo, st.min)
                hi = max(hi, st.max)
        if total == 0:
            return None
        running = 0
        cumulative = []
        for c in pooled:
            running += c
            cumulative.append(running)
        return percentile_from_buckets(
            self.buckets, cumulative, q, minimum=lo, maximum=hi
        )

    def samples(self) -> list[dict]:
        """Export form: cumulative buckets, count/sum/min/max, p50/95/99."""
        out = []
        for key, st in self._states.items():
            cumulative = self._cumulative(st)
            bucket_rows = [
                {"le": edge, "count": c}
                for edge, c in zip(self.buckets, cumulative)
            ]
            bucket_rows.append({"le": "+inf", "count": st.count})
            record = {
                "labels": self._label_dict(key),
                "count": st.count,
                "sum": st.sum,
                "min": st.min if st.count else None,
                "max": st.max if st.count else None,
                "buckets": bucket_rows,
            }
            for q in EXPORT_PERCENTILES:
                record[f"p{int(q * 100)}"] = (
                    percentile_from_buckets(
                        self.buckets, cumulative, q,
                        minimum=st.min, maximum=st.max,
                    )
                    if st.count
                    else None
                )
            out.append(record)
        return out


class MetricsRegistry:
    """Owns metric families; get-or-create by name with schema checks."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, cls, name, help, label_names, **kw):
        fam = self._families.get(name)
        if fam is not None:
            if not isinstance(fam, cls) or fam.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind} "
                    f"with labels {fam.label_names}"
                )
            return fam
        fam = cls(name, help, label_names, **kw)
        self._families[name] = fam
        return fam

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        """Get or register a counter family."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        """Get or register a gauge family."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or register a histogram family."""
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> _Family | None:
        """The registered family, or None."""
        return self._families.get(name)

    def names(self) -> list[str]:
        """Registered family names in registration order."""
        return list(self._families)

    def dump_state(self) -> dict:
        """Picklable snapshot of every family's raw series.

        The inverse of :meth:`merge_state`; used by the live backend to
        ship each child process's registry back to the parent. Label
        tuples are preserved verbatim (ints stay ints), so a merged
        registry is indistinguishable from one recorded in-process.
        """
        out: dict = {}
        for name, fam in self._families.items():
            entry: dict = {
                "kind": fam.kind,
                "help": fam.help,
                "labels": fam.label_names,
            }
            if isinstance(fam, Histogram):
                entry["buckets"] = fam.buckets
                entry["series"] = {
                    key: {
                        "bucket_counts": list(st.bucket_counts),
                        "count": st.count,
                        "sum": st.sum,
                        "min": st.min,
                        "max": st.max,
                    }
                    for key, st in fam.items()
                }
            else:
                entry["series"] = dict(fam._values)
            out[name] = entry
        return out

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`dump_state` snapshot into this registry.

        Counters add, gauges take the incoming value (last writer wins),
        and histograms merge bucket counts — so merging N worker
        registries yields the same totals as one shared registry would
        have recorded.
        """
        for name, entry in state.items():
            labels = tuple(entry["labels"])
            if entry["kind"] == "counter":
                fam = self.counter(name, entry["help"], labels)
                for key, value in entry["series"].items():
                    fam.inc(value, *key)
            elif entry["kind"] == "gauge":
                fam = self.gauge(name, entry["help"], labels)
                for key, value in entry["series"].items():
                    fam.set(value, *key)
            elif entry["kind"] == "histogram":
                fam = self.histogram(
                    name, entry["help"], labels, buckets=entry["buckets"]
                )
                for key, sdict in entry["series"].items():
                    st = fam._states.get(tuple(key))
                    if st is None:
                        st = fam._states[tuple(key)] = _HistogramState(
                            len(fam.buckets)
                        )
                    for i, c in enumerate(sdict["bucket_counts"]):
                        st.bucket_counts[i] += c
                    st.count += sdict["count"]
                    st.sum += sdict["sum"]
                    st.min = min(st.min, sdict["min"])
                    st.max = max(st.max, sdict["max"])
            else:  # pragma: no cover - future kinds
                raise ValueError(f"unknown metric kind {entry['kind']!r}")

    def to_dict(self) -> dict:
        """JSON-serializable dump of every family and sample."""
        return {
            name: {
                "kind": fam.kind,
                "help": fam.help,
                "labels": list(fam.label_names),
                "samples": fam.samples(),
            }
            for name, fam in self._families.items()
        }

    def write(self, path: str | pathlib.Path) -> None:
        """Dump the registry as indented JSON."""
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2))
