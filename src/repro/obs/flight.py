"""Flight recorder: a bounded ring of recent noteworthy events.

Chaos postmortems need to know what a worker was doing *right before*
it was SIGKILLed — but the full tracer may be disabled (tracing every
iteration is expensive) and end-of-run merging never happens for a
process that dies. The flight recorder is the black box for that case:
a small fixed-capacity ring that any subsystem can drop an event into,
cheap enough to leave on unconditionally, drained and shipped to the
supervisor with every telemetry delta (see ``docs/observability.md``).

Events are stored directly in Chrome-trace instant form (``ph: "i"``,
``cat: "flight"``) so the supervisor can ``Tracer.ingest`` them into
the merged trace document with no translation, and so a snapshot file's
``flight_tail`` can be pasted straight into a trace viewer.
"""

from __future__ import annotations

from collections import deque
from typing import Any

__all__ = ["FlightRecorder", "FLIGHT_CAT"]

FLIGHT_CAT = "flight"

# One flight event is a small dict; 256 of them is a few tens of KB —
# bounded regardless of run length or how chatty a failing subsystem is.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Fixed-capacity ring of Chrome-trace instant events."""

    def __init__(self, worker_id: int, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.worker_id = worker_id
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0  # lifetime count, including overwritten events
        self.drained = 0

    def record(
        self,
        name: str,
        t_s: float,
        args: dict[str, Any] | None = None,
        *,
        tid: int = 0,
    ) -> None:
        """Append one event at simulated time ``t_s`` (seconds)."""
        ev = {
            "ph": "i",
            "name": name,
            "cat": FLIGHT_CAT,
            "pid": self.worker_id,
            "tid": tid,
            "ts": round(t_s * 1e6, 3),
            "s": "t",
        }
        if args:
            ev["args"] = args
        self._ring.append(ev)
        self.recorded += 1

    def drain(self) -> list[dict]:
        """Remove and return everything currently in the ring (oldest first).

        Called at each delta ship: events already shipped are not resent,
        so the supervisor's accumulated stream plus the final ring equals
        the full (capacity-bounded) event history.
        """
        out = list(self._ring)
        self._ring.clear()
        self.drained += len(out)
        return out

    def peek(self) -> list[dict]:
        """The current ring contents without draining (oldest first)."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)
