"""Live-run status snapshots: the supervisor's side-channel to disk.

While a ``--backend proc`` run is in flight, the supervisor folds each
worker's telemetry deltas into a cluster-health **snapshot**: one JSON
document, atomically replaced in place, that an outside observer —
``repro-dlion status <dir>`` (optionally ``--watch``) or anything else
that can read a file — consumes without touching the run. The write is
``tmp + os.replace`` so a reader never sees a torn document; the reader
treats a missing or mid-replace file as "no snapshot yet".

The functions here are deliberately pure-data (build/write/read/render
on plain dicts) so tests can exercise the full surface without a live
run or any wall-clock sleeps.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics

__all__ = [
    "SNAPSHOT_NAME",
    "SNAPSHOT_VERSION",
    "STRAGGLER_FACTOR",
    "build_snapshot",
    "write_snapshot",
    "read_snapshot",
    "render_health_line",
    "render_snapshot",
]

SNAPSHOT_NAME = "live_status.json"
SNAPSHOT_VERSION = 1

# A worker is flagged a straggler when its iteration rate falls below
# this fraction of the cluster's median (only among positive rates, so
# a cold cluster is not all-stragglers).
STRAGGLER_FACTOR = 0.5


def build_snapshot(
    *,
    time_model_s: float,
    horizon_s: float,
    wall_elapsed_s: float,
    speedup: float,
    workers: dict[int, dict],
    cluster: dict,
    flight_tail: dict[int, list] | None = None,
) -> dict:
    """Assemble one snapshot document and flag stragglers.

    ``workers`` maps worker id to at least ``iteration`` / ``rate``
    (iterations per wall second) / ``alive`` / ``restarts``; a
    ``straggler`` flag is added here from the cross-worker rate
    distribution. ``cluster`` carries pre-aggregated transport numbers
    (see :func:`render_health_line` for the keys it reads).
    """
    rates = [
        info.get("rate", 0.0) for info in workers.values() if info.get("alive")
    ]
    positive = [r for r in rates if r > 0]
    floor = STRAGGLER_FACTOR * statistics.median(positive) if positive else 0.0
    out_workers = {}
    for w, info in sorted(workers.items()):
        entry = dict(info)
        entry["straggler"] = bool(
            entry.get("alive")
            and positive
            and entry.get("rate", 0.0) < floor
        )
        out_workers[str(w)] = entry
    snap = {
        "version": SNAPSHOT_VERSION,
        "time_model_s": round(time_model_s, 3),
        "horizon_s": horizon_s,
        "wall_elapsed_s": round(wall_elapsed_s, 3),
        "speedup": speedup,
        "workers": out_workers,
        "cluster": dict(cluster),
    }
    if flight_tail:
        snap["flight_tail"] = {
            str(w): list(events) for w, events in sorted(flight_tail.items())
        }
    return snap


def write_snapshot(directory: str | pathlib.Path, snapshot: dict) -> pathlib.Path:
    """Atomically publish ``snapshot`` as ``<directory>/live_status.json``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / SNAPSHOT_NAME
    tmp = directory / (SNAPSHOT_NAME + ".tmp")
    tmp.write_text(json.dumps(snapshot, indent=2))
    os.replace(tmp, path)
    return path


def read_snapshot(directory: str | pathlib.Path) -> dict | None:
    """The current snapshot, or None when absent/unreadable (no raise)."""
    path = pathlib.Path(directory) / SNAPSHOT_NAME
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0 or unit == "GB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}GB"  # pragma: no cover - loop always returns


def _fmt_latency(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def render_health_line(snapshot: dict) -> str:
    """One line of cluster health, the ``--stats-interval`` output.

    Example::

        [live t=12.3/40.0s] it/s 0:3.1 1:3.0 2:1.2* | p99 1.8ms | \
outbox<=3 queue<=2 | 1.2k msgs 5.6MB | up 3/3
    """
    workers = snapshot.get("workers", {})
    cluster = snapshot.get("cluster", {})
    per_worker = " ".join(
        f"{w}:{info.get('rate', 0.0):.1f}{'*' if info.get('straggler') else ''}"
        + ("" if info.get("alive") else "!")
        for w, info in sorted(workers.items(), key=lambda kv: int(kv[0]))
    )
    alive = sum(1 for info in workers.values() if info.get("alive"))
    msgs = cluster.get("send_msgs_total", 0)
    msgs_s = f"{msgs / 1e3:.1f}k" if msgs >= 1000 else f"{int(msgs)}"
    return (
        f"[live t={snapshot.get('time_model_s', 0.0):.1f}"
        f"/{snapshot.get('horizon_s', 0.0):.1f}s]"
        f" it/s {per_worker}"
        f" | p99 {_fmt_latency(cluster.get('frame_latency_p99_s'))}"
        f" | outbox<={int(cluster.get('outbox_depth_max', 0))}"
        f" queue<={int(cluster.get('queue_depth_max', 0))}"
        f" | {msgs_s} msgs {_fmt_bytes(cluster.get('send_bytes_total', 0))}"
        f" | up {alive}/{len(workers)}"
    )


def render_snapshot(snapshot: dict) -> str:
    """Multi-line rendering for ``repro-dlion status`` (one table)."""
    lines = [render_health_line(snapshot)]
    lines.append(
        f"  wall {snapshot.get('wall_elapsed_s', 0.0):.1f}s at speedup "
        f"{snapshot.get('speedup', 0.0):g}"
    )
    header = (
        f"  {'worker':>6} {'alive':>5} {'iter':>8} {'it/s':>7} "
        f"{'restarts':>8} {'straggler':>9}"
    )
    lines.append(header)
    for w, info in sorted(
        snapshot.get("workers", {}).items(), key=lambda kv: int(kv[0])
    ):
        lines.append(
            f"  {w:>6} {('yes' if info.get('alive') else 'NO'):>5} "
            f"{info.get('iteration', 0):>8} {info.get('rate', 0.0):>7.2f} "
            f"{info.get('restarts', 0):>8} "
            f"{('YES' if info.get('straggler') else '-'):>9}"
        )
    tail = snapshot.get("flight_tail") or {}
    n_tail = sum(len(v) for v in tail.values())
    if n_tail:
        lines.append(f"  flight-recorder tail: {n_tail} event(s) retained")
    return "\n".join(lines)
