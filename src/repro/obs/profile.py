"""Wall-clock profiling hooks for the simulator's real hot paths.

Unlike :mod:`repro.obs.trace` (simulated time), this measures where the
**wall clock** goes: NumPy forward/backward passes, Max-N payload
selection, and event-loop dispatch. ``BENCH_*`` runs and the CLI's
``--profile`` flag use it to attribute runtime to subsystems and pick
the next optimisation target.

Instrumentation sites call the module-level :func:`scope`::

    with profile.scope("nn/loss_and_grads"):
        ...

which resolves the *active* profiler at entry. With no active profiler
(the default) it returns a shared no-op context manager — one function
call and a ``None`` check, no ``perf_counter`` — so always-on
instrumentation costs effectively nothing. Activate a profiler for a
region with::

    prof = Profiler()
    with activate(prof):
        engine.run(...)
    print(prof.report())

The active profiler lives in a :class:`contextvars.ContextVar`, so
scopes entered on the compute pool's worker threads attribute to the
profiler of the context captured at task-submission time (the pool
submits tasks through :func:`contextvars.copy_context`) instead of
racing on a module global. Recording itself takes a lock, since pool
threads and the event loop record scopes concurrently.

Scope **totals** are inclusive: a scope's total contains any scopes
entered beneath it on the same thread. Each scope additionally tracks
its **self** (exclusive) time — total minus the time spent in child
scopes — so ``simclock/dispatch`` can report pure dispatch overhead
separate from the nn/ and maxn/ work running inside event callbacks.
Parent/child nesting is tracked per *thread* (``threading.local``), not
per context: the compute pool copies the submission context onto its
threads, and a ContextVar stack would alias one frame list across
threads. A scope running on a pool thread is a root on that thread, so
speculated nn/ work does not subtract from the event loop's dispatch
self time — correct, since dispatch never blocked on it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Iterator

__all__ = ["Profiler", "activate", "active_profiler", "scope", "set_active"]


class _NullScope:
    """Shared do-nothing context manager for the profiling-off path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SCOPE = _NullScope()

# The active profiler for the *current context*. A ContextVar (not a
# module global) so a context copied at compute-pool submission time
# carries the profiler onto the pool thread, and nested ``activate``
# blocks restore the previous profiler on exit.
_active: ContextVar["Profiler | None"] = ContextVar("repro_active_profiler", default=None)

# Frame layout (plain list, no attribute lookups on the hot path):
_F_NAME, _F_T0, _F_CHILD = 0, 1, 2


class _Scope:
    """A running timed scope; records into its profiler on exit."""

    __slots__ = ("profiler", "name", "_frame")

    def __init__(self, profiler: "Profiler", name: str):
        self.profiler = profiler
        self.name = name

    def __enter__(self):
        self._frame = self.profiler.begin(self.name)
        return self

    def __exit__(self, *exc):
        self.profiler.end(self._frame)
        return False


class Profiler:
    """Aggregates wall-clock seconds per named scope (thread-safe)."""

    enabled = True

    def __init__(self) -> None:
        # name -> [calls, total_seconds, child_seconds]
        self._totals: dict[str, list] = {}
        # Recording is a read-modify-write; compute-pool threads record
        # nn/* scopes concurrently with the event loop's scopes.
        self._lock = threading.Lock()
        # Per-thread stack of open frames for parent/child attribution.
        self._frames = threading.local()

    # -- frame API (used by _Scope and by SimClock's pump loop) --------

    def begin(self, name: str) -> list:
        """Open a frame for ``name`` on this thread; returns the frame.

        Pass the frame back to :meth:`end`. Frames on the same thread
        nest; the elapsed time of a child is charged against the
        parent's self time.
        """
        stack = getattr(self._frames, "stack", None)
        if stack is None:
            stack = self._frames.stack = []
        frame = [name, perf_counter(), 0.0]
        stack.append(frame)
        return frame

    def end(self, frame: list, calls: int = 1) -> None:
        """Close ``frame``, recording its inclusive and self time."""
        elapsed = perf_counter() - frame[_F_T0]
        stack = self._frames.stack
        # Unwind to this frame (robust to a callback leaking a scope).
        while stack and stack[-1] is not frame:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1][_F_CHILD] += elapsed
        child = frame[_F_CHILD]
        if child > elapsed:  # clock skew guard; self time is never < 0
            child = elapsed
        with self._lock:
            entry = self._totals.get(frame[_F_NAME])
            if entry is None:
                self._totals[frame[_F_NAME]] = [calls, elapsed, child]
            else:
                entry[0] += calls
                entry[1] += elapsed
                entry[2] += child

    def scope(self, name: str) -> _Scope:
        """A context manager timing one entry of ``name``."""
        return _Scope(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record ``seconds`` of wall time (and ``calls`` entries).

        The time is treated as a leaf measurement: it is charged as
        child time to the innermost open frame on this thread, if any.
        """
        stack = getattr(self._frames, "stack", None)
        if stack:
            stack[-1][_F_CHILD] += seconds
        with self._lock:
            entry = self._totals.get(name)
            if entry is None:
                self._totals[name] = [calls, seconds, 0.0]
            else:
                entry[0] += calls
                entry[1] += seconds

    # -- accessors -----------------------------------------------------

    def totals(self) -> dict[str, tuple[int, float]]:
        """``{name: (calls, total_seconds)}`` for every scope seen.

        Totals are inclusive of nested scopes (historical shape, kept
        for compatibility); see :meth:`self_totals` for exclusive time.
        """
        with self._lock:
            return {name: (c, s) for name, (c, s, _child) in self._totals.items()}

    def self_totals(self) -> dict[str, tuple[int, float]]:
        """``{name: (calls, self_seconds)}`` — time *exclusive* of child scopes."""
        with self._lock:
            return {name: (c, s - child) for name, (c, s, child) in self._totals.items()}

    def total(self, name: str) -> float:
        """Total (inclusive) wall seconds recorded under ``name`` (0.0 if unseen)."""
        with self._lock:
            entry = self._totals.get(name)
            return entry[1] if entry else 0.0

    def self_total(self, name: str) -> float:
        """Self (exclusive) wall seconds recorded under ``name`` (0.0 if unseen)."""
        with self._lock:
            entry = self._totals.get(name)
            return entry[1] - entry[2] if entry else 0.0

    def report(self) -> str:
        """A text table of scopes sorted by total wall time (descending).

        ``total s`` is inclusive of nested scopes, so that column does
        not sum to the run's wall time; ``self s`` (total minus child
        scopes entered on the same thread) does, per thread.
        """
        with self._lock:
            totals = {name: tuple(entry) for name, entry in self._totals.items()}
        if not totals:
            return "profile: no scopes recorded"
        rows = sorted(totals.items(), key=lambda kv: -kv[1][1])
        width = max(len("scope"), max(len(n) for n, _ in rows))
        lines = [
            f"{'scope'.ljust(width)}  {'calls':>9}  {'total s':>10}  {'self s':>10}  {'mean ms':>10}",
            f"{'-' * width}  {'-' * 9}  {'-' * 10}  {'-' * 10}  {'-' * 10}",
        ]
        for name, (calls, total, child) in rows:
            mean_ms = (total / calls) * 1e3 if calls else 0.0
            lines.append(
                f"{name.ljust(width)}  {calls:>9d}  {total:>10.4f}  {total - child:>10.4f}  {mean_ms:>10.4f}"
            )
        return "\n".join(lines)


def set_active(profiler: Profiler | None) -> Profiler | None:
    """Install ``profiler`` as the context's target; returns the previous one."""
    previous = _active.get()
    _active.set(profiler)
    return previous


def active_profiler() -> Profiler | None:
    """The currently active profiler, or None when profiling is off."""
    return _active.get()


@contextmanager
def activate(profiler: Profiler) -> Iterator[Profiler]:
    """Make ``profiler`` active for the duration of the block."""
    token = _active.set(profiler)
    try:
        yield profiler
    finally:
        _active.reset(token)


def scope(name: str):
    """Time ``name`` against the active profiler (no-op when none)."""
    profiler = _active.get()
    if profiler is None:
        return _NULL_SCOPE
    return _Scope(profiler, name)
