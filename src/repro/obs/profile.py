"""Wall-clock profiling hooks for the simulator's real hot paths.

Unlike :mod:`repro.obs.trace` (simulated time), this measures where the
**wall clock** goes: NumPy forward/backward passes, Max-N payload
selection, and event-loop dispatch. ``BENCH_*`` runs and the CLI's
``--profile`` flag use it to attribute runtime to subsystems and pick
the next optimisation target.

Instrumentation sites call the module-level :func:`scope`::

    with profile.scope("nn/loss_and_grads"):
        ...

which resolves the *active* profiler at entry. With no active profiler
(the default) it returns a shared no-op context manager — one function
call and a ``None`` check, no ``perf_counter`` — so always-on
instrumentation costs effectively nothing. Activate a profiler for a
region with::

    prof = Profiler()
    with activate(prof):
        engine.run(...)
    print(prof.report())

The active profiler lives in a :class:`contextvars.ContextVar`, so
scopes entered on the compute pool's worker threads attribute to the
profiler of the context captured at task-submission time (the pool
submits tasks through :func:`contextvars.copy_context`) instead of
racing on a module global. :meth:`Profiler.add` itself takes a lock,
since pool threads and the event loop record scopes concurrently.

Scopes are **inclusive**: a scope's total contains any scopes entered
beneath it (``simclock/dispatch`` in particular contains nearly
everything, since all simulation work runs inside event callbacks).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Iterator

__all__ = ["Profiler", "activate", "active_profiler", "scope", "set_active"]


class _NullScope:
    """Shared do-nothing context manager for the profiling-off path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SCOPE = _NullScope()

# The active profiler for the *current context*. A ContextVar (not a
# module global) so a context copied at compute-pool submission time
# carries the profiler onto the pool thread, and nested ``activate``
# blocks restore the previous profiler on exit.
_active: ContextVar["Profiler | None"] = ContextVar("repro_active_profiler", default=None)


class _Scope:
    """A running timed scope; records into its profiler on exit."""

    __slots__ = ("profiler", "name", "_t0")

    def __init__(self, profiler: "Profiler", name: str):
        self.profiler = profiler
        self.name = name

    def __enter__(self):
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc):
        self.profiler.add(self.name, perf_counter() - self._t0)
        return False


class Profiler:
    """Aggregates wall-clock seconds per named scope (thread-safe)."""

    enabled = True

    def __init__(self) -> None:
        # name -> [calls, total_seconds]
        self._totals: dict[str, list] = {}
        # add() is a read-modify-write; compute-pool threads record
        # nn/* scopes concurrently with the event loop's scopes.
        self._lock = threading.Lock()

    def scope(self, name: str) -> _Scope:
        """A context manager timing one entry of ``name``."""
        return _Scope(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record ``seconds`` of wall time (and ``calls`` entries)."""
        with self._lock:
            entry = self._totals.get(name)
            if entry is None:
                self._totals[name] = [calls, seconds]
            else:
                entry[0] += calls
                entry[1] += seconds

    def totals(self) -> dict[str, tuple[int, float]]:
        """``{name: (calls, total_seconds)}`` for every scope seen."""
        with self._lock:
            return {name: (c, s) for name, (c, s) in self._totals.items()}

    def total(self, name: str) -> float:
        """Total wall seconds recorded under ``name`` (0.0 if unseen)."""
        with self._lock:
            entry = self._totals.get(name)
            return entry[1] if entry else 0.0

    def report(self) -> str:
        """A text table of scopes sorted by total wall time (descending).

        Scopes are inclusive of nested scopes, so columns do not sum to
        the run's wall time.
        """
        totals = self.totals()
        if not totals:
            return "profile: no scopes recorded"
        rows = sorted(totals.items(), key=lambda kv: -kv[1][1])
        width = max(len("scope"), max(len(n) for n, _ in rows))
        lines = [
            f"{'scope'.ljust(width)}  {'calls':>9}  {'total s':>10}  {'mean ms':>10}",
            f"{'-' * width}  {'-' * 9}  {'-' * 10}  {'-' * 10}",
        ]
        for name, (calls, total) in rows:
            mean_ms = (total / calls) * 1e3 if calls else 0.0
            lines.append(
                f"{name.ljust(width)}  {calls:>9d}  {total:>10.4f}  {mean_ms:>10.4f}"
            )
        return "\n".join(lines)


def set_active(profiler: Profiler | None) -> Profiler | None:
    """Install ``profiler`` as the context's target; returns the previous one."""
    previous = _active.get()
    _active.set(profiler)
    return previous


def active_profiler() -> Profiler | None:
    """The currently active profiler, or None when profiling is off."""
    return _active.get()


@contextmanager
def activate(profiler: Profiler) -> Iterator[Profiler]:
    """Make ``profiler`` active for the duration of the block."""
    token = _active.set(profiler)
    try:
        yield profiler
    finally:
        _active.reset(token)


def scope(name: str):
    """Time ``name`` against the active profiler (no-op when none)."""
    profiler = _active.get()
    if profiler is None:
        return _NULL_SCOPE
    return _Scope(profiler, name)
