"""Observability: event tracing, metrics, and wall-clock profiling.

Three independent instruments share this package (see
``docs/observability.md``):

* :mod:`repro.obs.trace` — spans and instant events in **simulated**
  time, exported as Chrome-trace-format JSON (Perfetto /
  ``chrome://tracing``). Answers "what happened when" inside one run.
* :mod:`repro.obs.metrics` — named counters, gauges, and fixed-bucket
  histograms with labels. Answers "how much / how many" and backs the
  :class:`~repro.core.engine.RunResult` accounting.
* :mod:`repro.obs.profile` — ``perf_counter`` scopes around the real
  hot paths. Answers "where does the **wall clock** go" for ``BENCH_*``
  runs and perf work.

The live backend's telemetry plane adds two more:

* :mod:`repro.obs.flight` — a bounded per-worker ring of instant events
  (the flight recorder) drained with each telemetry delta, so the last
  moments before a crash survive the crash.
* :mod:`repro.obs.live_status` — the supervisor's atomically-replaced
  cluster-health snapshot (``live_status.json``) and its renderers.

All instruments default to off (or to a no-op implementation) so the
simulator's hot path pays only an ``enabled`` check when nothing is
observing.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_from_buckets,
    percentile_from_sample,
)
from repro.obs.profile import Profiler, activate, active_profiler, scope
from repro.obs.trace import (
    NULL_TRACER,
    TID_CTRL,
    TID_DKT,
    TID_ITER,
    TID_NET,
    TID_SYNC,
    NullTracer,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TID_ITER",
    "TID_SYNC",
    "TID_NET",
    "TID_DKT",
    "TID_CTRL",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "FlightRecorder",
    "percentile_from_buckets",
    "percentile_from_sample",
    "Profiler",
    "activate",
    "active_profiler",
    "scope",
]
