"""The paper's model workloads plus a fast MLP for tests.

``build_model(name, ...)`` mirrors DLion's ``build_model`` API (paper
§4.2): "various DNN models can be defined and trained in DLion ... by
simply calling the API with different model name".
"""

from __future__ import annotations

import numpy as np

from repro.nn.model import Model
from repro.nn.models.cipher import cipher_cnn
from repro.nn.models.mobilenet import mobilenet_slim
from repro.nn.models.mlp import mlp

__all__ = ["build_model", "cipher_cnn", "mobilenet_slim", "mlp", "MODEL_BUILDERS"]

MODEL_BUILDERS = {
    "cipher": cipher_cnn,
    "mobilenet": mobilenet_slim,
    "mlp": mlp,
}


def build_model(name: str, rng: np.random.Generator, **kwargs) -> Model:
    """Construct a model by name — the DLion ``build_model`` API."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(rng=rng, **kwargs)
