"""A MobileNet-style network built from depthwise-separable blocks.

The paper's GPU workload is MobileNet (28 layers, 17 MB) on
ImageNet-100. The full network at 224×224 is far beyond a NumPy
reproduction budget, so this is a *width/depth-scaled* MobileNet that
keeps the defining structure — a stem conv followed by depthwise +
pointwise pairs with batch-norm and ReLU6, stride-2 downsampling, global
average pooling — at 32×32 inputs. The simulator accounts for wire size
with the model's true parameter bytes, so the communication behaviour
scales the same way the paper's does (bigger model ⇒ network-bound).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool2D,
    ReLU6,
)
from repro.nn.model import Model

__all__ = ["mobilenet_slim"]


def _separable(
    layers: list,
    in_c: int,
    out_c: int,
    stride: int,
    rng: np.random.Generator,
) -> int:
    """Append a depthwise-separable block; returns the new channel count."""
    layers += [
        DepthwiseConv2D(in_c, 3, rng, stride=stride),
        BatchNorm(in_c),
        ReLU6(),
        Conv2D(in_c, out_c, 1, rng, pad=0),
        BatchNorm(out_c),
        ReLU6(),
    ]
    return out_c


def mobilenet_slim(
    rng: np.random.Generator,
    *,
    in_channels: int = 3,
    num_classes: int = 100,
    width: float = 1.0,
    blocks: tuple[tuple[int, int], ...] = ((32, 1), (64, 2), (128, 1), (128, 2)),
) -> Model:
    """Build the scaled MobileNet.

    ``blocks`` is a sequence of ``(out_channels, stride)`` separable
    blocks following a 16-channel stem. The default configuration has
    ~40 k params; raise ``width`` for a heavier wire footprint.
    """

    def w(c: int) -> int:
        return max(4, int(round(c * width)))

    layers: list = [
        Conv2D(in_channels, w(16), 3, rng, stride=1),
        BatchNorm(w(16)),
        ReLU6(),
    ]
    c = w(16)
    for out_c, stride in blocks:
        c = _separable(layers, c, w(out_c), stride, rng)
    layers += [
        GlobalAvgPool2D(),
        Dense(c, num_classes, rng, init="glorot"),
    ]
    return Model(layers)
