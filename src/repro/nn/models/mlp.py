"""A small MLP — the fast-iteration workload for tests and quick benches.

DLion's techniques are architecture-agnostic (they act on named gradient
variables), so an MLP exercises every distributed code path at a tiny
fraction of the CNN's step cost.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.model import Model

__all__ = ["mlp"]


def mlp(
    rng: np.random.Generator,
    *,
    in_dim: int = 576,
    hidden: tuple[int, ...] = (128, 64),
    num_classes: int = 10,
) -> Model:
    """Build ``in_dim -> hidden... -> num_classes`` with ReLU between."""
    layers: list = [Flatten()]
    prev = in_dim
    for h in hidden:
        layers += [Dense(prev, h, rng), ReLU()]
        prev = h
    layers.append(Dense(prev, num_classes, rng, init="glorot"))
    return Model(layers)
