"""The Cipher CNN.

Paper §5.1.1: "Cipher model consists of 3 convolutional and 2
fully-connected layers with ReLU and Maxpooling applied. We use 10, 20,
100 kernels and 200 neurons like Ako." Input is the paper's 28×28-ish
gray-scale imagery; we build for a configurable square input (default 24
so that two 2× max-pools divide evenly).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.model import Model

__all__ = ["cipher_cnn"]


def cipher_cnn(
    rng: np.random.Generator,
    *,
    in_channels: int = 1,
    image_size: int = 24,
    num_classes: int = 10,
    kernels: tuple[int, int, int] = (10, 20, 100),
    hidden: int = 200,
) -> Model:
    """Build the Cipher CNN (≈0.75 M params at the defaults, ~3 MB)."""
    if image_size % 4 != 0:
        raise ValueError("image_size must be divisible by 4 (two 2x max-pools)")
    k1, k2, k3 = kernels
    final_spatial = image_size // 4
    flat = k3 * final_spatial * final_spatial
    return Model(
        [
            Conv2D(in_channels, k1, 3, rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(k1, k2, 3, rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(k2, k3, 3, rng),
            ReLU(),
            Flatten(),
            Dense(flat, hidden, rng),
            ReLU(),
            Dense(hidden, num_classes, rng, init="glorot"),
        ]
    )
