"""Weight initializers.

He initialization for ReLU stacks, Glorot for linear outputs; both take
an explicit :class:`numpy.random.Generator` so models are reproducible.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["he_normal", "glorot_uniform", "zeros", "ones"]


def he_normal(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He-normal init: N(0, sqrt(2 / fan_in)). Standard for ReLU layers."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def glorot_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot-uniform init: U(-limit, limit) with limit = sqrt(6/(fan_in+fan_out))."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """An all-zeros float32 parameter (biases, BN beta)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """An all-ones float32 parameter (BN gamma)."""
    return np.ones(shape, dtype=np.float32)
