"""Classification loss: numerically-stable softmax cross-entropy."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax_probs", "softmax_cross_entropy"]


def softmax_probs(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift for numerical stability."""
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    shifted = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    ``labels`` are integer class ids. The returned gradient is already
    averaged over the batch (matching Eq. 2/6 in the paper where the
    gradient is the *mean* over the minibatch).
    """
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match batch {n}")
    if labels.min() < 0 or labels.max() >= logits.shape[1]:
        raise ValueError("label out of range")
    probs = softmax_probs(logits)
    picked = probs[np.arange(n), labels]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad
