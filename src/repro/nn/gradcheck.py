"""Numerical gradient checking used by the test suite.

Central differences over every parameter (or a random subsample for big
variables) against the analytic gradients from ``Model.loss_and_grads``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import softmax_cross_entropy
from repro.nn.model import Model

__all__ = ["max_relative_grad_error"]


def max_relative_grad_error(
    model: Model,
    x: np.ndarray,
    labels: np.ndarray,
    *,
    eps: float = 1e-5,
    max_checks_per_var: int = 24,
    rng: np.random.Generator | None = None,
) -> float:
    """Largest relative error between analytic and numeric gradients.

    Parameters are perturbed in float64 to keep the finite-difference
    noise below the comparison threshold.
    """
    rng = rng or np.random.default_rng(0)

    # Promote parameters to float64 for the check.
    for layer in model.layers:
        for k in layer.params:
            layer.params[k] = layer.params[k].astype(np.float64)

    _, grads = model.loss_and_grads(x.astype(np.float64), labels)

    def loss_only() -> float:
        logits = model.forward(x.astype(np.float64), training=True)
        loss, _ = softmax_cross_entropy(logits, labels)
        return loss

    worst = 0.0
    for name, g in grads.items():
        w = model.get_variable(name)
        flat_w = w.reshape(-1)
        flat_g = g.reshape(-1)
        n = flat_w.size
        picks = (
            np.arange(n)
            if n <= max_checks_per_var
            else rng.choice(n, size=max_checks_per_var, replace=False)
        )
        for i in picks:
            orig = flat_w[i]
            flat_w[i] = orig + eps
            lp = loss_only()
            flat_w[i] = orig - eps
            lm = loss_only()
            flat_w[i] = orig
            num = (lp - lm) / (2 * eps)
            ana = flat_g[i]
            denom = max(abs(num), abs(ana), 1e-4)
            worst = max(worst, abs(num - ana) / denom)
    return worst
