"""A from-scratch NumPy deep-learning substrate.

This package replaces the TensorFlow core the DLion prototype was built
on (paper §4): it provides exactly what the distributed-training layer
needs — models made of *named weight variables*, minibatch gradient
computation, and in-place parameter updates — implemented with vectorized
NumPy and verified against numerical differentiation.

Public surface:

* :class:`repro.nn.model.Model` — a sequential network with named
  variables, ``loss_and_grads`` and ``apply_grads``.
* :mod:`repro.nn.layers` — dense, conv2d (im2col), depthwise conv,
  pooling, batch-norm, activations, dropout, flatten.
* :mod:`repro.nn.models` — the paper's workloads: the Cipher CNN, a
  MobileNet-style separable-convolution net, and an MLP for fast tests.
* :mod:`repro.nn.datasets` — seeded synthetic classification datasets
  with worker sharding (the CIFAR-10 / ImageNet-100 stand-ins).
"""

from repro.nn.model import Model
from repro.nn.losses import softmax_cross_entropy, softmax_probs
from repro.nn.optim import SGD
from repro.nn.models import build_model, cipher_cnn, mobilenet_slim, mlp
from repro.nn.datasets import SyntheticImageDataset, Shard, MinibatchSampler

__all__ = [
    "Model",
    "softmax_cross_entropy",
    "softmax_probs",
    "SGD",
    "build_model",
    "cipher_cnn",
    "mobilenet_slim",
    "mlp",
    "SyntheticImageDataset",
    "Shard",
    "MinibatchSampler",
]
