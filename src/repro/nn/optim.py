"""Optimizers.

The distributed layer applies most updates itself through
``Model.apply_grads`` (it must weight each peer's gradient individually,
Eq. 7); ``SGD`` here is the single-machine convenience used by examples,
tests, and the RCP profiling probes.

All update arithmetic runs in place against cached scratch buffers —
momentum, clipping, and the parameter step allocate nothing after the
first call — while reproducing the historical allocating expressions
bit for bit (each temporary keeps the dtype the old expression gave it).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.nn.model import Model

__all__ = ["SGD"]


class SGD:
    """Stochastic gradient descent with optional Polyak momentum,
    decoupled weight decay, and global-norm gradient clipping."""

    def __init__(
        self,
        model: Model,
        *,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        clip_norm: float | None = None,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0,1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._velocity: dict[str, np.ndarray] | None = None
        if momentum > 0.0:
            self._velocity = {
                n: np.zeros_like(v) for n, v in model.variables().items()
            }
        # name -> scratch for the clipped gradient / scaled velocity.
        self._scratch: dict[str, np.ndarray] = {}

    @staticmethod
    def global_norm(grads: Mapping[str, np.ndarray]) -> float:
        """L2 norm over all gradient entries (allocating convenience form)."""
        return float(
            np.sqrt(sum(float(np.square(g).sum()) for g in grads.values()))
        )

    def _global_norm(self, grads: Mapping[str, np.ndarray]) -> float:
        # Same value as global_norm bit for bit (identical elementwise
        # square, reduction, and accumulation order), but squares into
        # the clip scratch so the norm check allocates nothing.
        total = 0.0
        for n, g in grads.items():
            s = self._scr(f"clip/{n}", g)
            np.square(g, out=s)
            total += float(s.sum())
        return float(np.sqrt(total))

    def _scr(self, name: str, like: np.ndarray) -> np.ndarray:
        buf = self._scratch.get(name)
        if buf is None or buf.shape != like.shape or buf.dtype != like.dtype:
            buf = np.empty(like.shape, dtype=like.dtype)
            self._scratch[name] = buf
        return buf

    def _clip(self, grads: Mapping[str, np.ndarray]) -> Mapping[str, np.ndarray]:
        if self.clip_norm is None:
            return grads
        norm = self._global_norm(grads)
        if norm <= self.clip_norm or norm == 0.0:
            return grads
        scale = self.clip_norm / norm
        clipped = {}
        for n, g in grads.items():
            s = self._scr(f"clip/{n}", g)
            np.multiply(g, scale, out=s)
            clipped[n] = s
        return clipped

    def step(self, grads: Mapping[str, np.ndarray]) -> None:
        """Apply one update from the given per-variable gradients."""
        grads = self._clip(grads)
        variables = self.model.variables()
        if self.weight_decay > 0.0:
            # Decoupled decay (AdamW-style): shrink weights directly.
            for v in variables.values():
                v *= 1.0 - self.lr * self.weight_decay
        if self._velocity is None:
            self.model.apply_grads(grads, lr=self.lr)
            return
        for name, g in grads.items():
            v = self._velocity[name]
            v *= self.momentum
            v += g
            # In-place ``variables[name] -= self.lr * v``.
            s = self._scr(f"step/{name}", v)
            np.multiply(v, self.lr, out=s)
            np.subtract(variables[name], s, out=variables[name])
