"""Optimizers.

The distributed layer applies most updates itself through
``Model.apply_grads`` (it must weight each peer's gradient individually,
Eq. 7); ``SGD`` here is the single-machine convenience used by examples,
tests, and the RCP profiling probes.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.nn.model import Model

__all__ = ["SGD"]


class SGD:
    """Stochastic gradient descent with optional Polyak momentum,
    decoupled weight decay, and global-norm gradient clipping."""

    def __init__(
        self,
        model: Model,
        *,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        clip_norm: float | None = None,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0,1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._velocity: dict[str, np.ndarray] | None = None
        if momentum > 0.0:
            self._velocity = {
                n: np.zeros_like(v) for n, v in model.variables().items()
            }

    @staticmethod
    def global_norm(grads: Mapping[str, np.ndarray]) -> float:
        return float(
            np.sqrt(sum(float(np.square(g).sum()) for g in grads.values()))
        )

    def _clip(self, grads: Mapping[str, np.ndarray]) -> Mapping[str, np.ndarray]:
        if self.clip_norm is None:
            return grads
        norm = self.global_norm(grads)
        if norm <= self.clip_norm or norm == 0.0:
            return grads
        scale = self.clip_norm / norm
        return {n: g * scale for n, g in grads.items()}

    def step(self, grads: Mapping[str, np.ndarray]) -> None:
        """Apply one update from the given per-variable gradients."""
        grads = self._clip(grads)
        variables = self.model.variables()
        if self.weight_decay > 0.0:
            # Decoupled decay (AdamW-style): shrink weights directly.
            for v in variables.values():
                v *= 1.0 - self.lr * self.weight_decay
        if self._velocity is None:
            self.model.apply_grads(grads, lr=self.lr)
            return
        for name, g in grads.items():
            v = self._velocity[name]
            v *= self.momentum
            v += g
            variables[name] -= self.lr * v
