"""The model container: a sequential net with *named weight variables*.

Named variables are the unit everything in DLion operates on — Max N is
applied per variable, messages carry (variable name, indices, values),
and weight exchange ships the full variable dict. This mirrors the
paper's §4.2: "The granularity of data transmission is not the whole
weight variables, but individual weight variables."
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.losses import softmax_cross_entropy
from repro.obs import profile as _profile

__all__ = ["Model"]

GradDict = dict[str, np.ndarray]


class Model:
    """A feed-forward stack of layers with a softmax classification head.

    Parameters are exposed as an ordered ``{variable_name: array}``
    mapping where names are ``"<idx>_<LayerType>/<param>"``; gradient
    dicts produced by :meth:`loss_and_grads` use the same keys.
    """

    def __init__(self, layers: Iterable[Layer]):
        self.layers: list[Layer] = list(layers)
        if not self.layers:
            raise ValueError("model needs at least one layer")
        self._var_index: dict[str, tuple[Layer, str]] = {}
        for i, layer in enumerate(self.layers):
            for pname in layer.params:
                self._var_index[f"{i:02d}_{layer.name}/{pname}"] = (layer, pname)
        # Update-step scratch (one buffer per variable shape/dtype) so
        # apply_grads never allocates the ``lr * coeff * g`` temporary.
        self._scratch: dict[tuple, np.ndarray] = {}

    def _scr(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype))
        buf = self._scratch.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[key] = buf
        return buf

    # ------------------------------------------------------------------
    # Variable access
    # ------------------------------------------------------------------
    @property
    def variable_names(self) -> list[str]:
        return list(self._var_index.keys())

    def get_variable(self, name: str) -> np.ndarray:
        """The live array behind one named weight variable."""
        layer, pname = self._var_index[name]
        return layer.params[pname]

    def variables(self) -> dict[str, np.ndarray]:
        """Live views of the parameters (not copies)."""
        return {name: layer.params[p] for name, (layer, p) in self._var_index.items()}

    def copy_weights(self) -> dict[str, np.ndarray]:
        """A deep copy of all parameters, e.g. for direct knowledge transfer."""
        return {n: v.copy() for n, v in self.variables().items()}

    def set_weights(self, weights: Mapping[str, np.ndarray]) -> None:
        """Overwrite parameters in place from a full weight dict."""
        if set(weights.keys()) != set(self._var_index.keys()):
            missing = set(self._var_index) ^ set(weights)
            raise KeyError(f"weight dict does not match model variables: {missing}")
        for name, value in weights.items():
            layer, pname = self._var_index[name]
            if layer.params[pname].shape != value.shape:
                raise ValueError(f"shape mismatch for {name}")
            layer.params[pname][...] = value

    def num_params(self) -> int:
        """Total trainable scalars across all variables."""
        return int(sum(v.size for v in self.variables().values()))

    def nbytes(self) -> int:
        """Total parameter payload in bytes (float32 wire format)."""
        return int(sum(v.size * 4 for v in self.variables().values()))

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        """Run the stack; returns the classification logits."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def loss_and_grads(
        self, x: np.ndarray, labels: np.ndarray
    ) -> tuple[float, GradDict]:
        """One training step's loss and per-variable gradients (Eq. 6)."""
        with _profile.scope("nn/loss_and_grads"):
            with _profile.scope("nn/forward"):
                logits = self.forward(x, training=True)
            loss, dlogits = softmax_cross_entropy(logits, labels)
            with _profile.scope("nn/backward"):
                dout = dlogits
                for layer in reversed(self.layers):
                    dout = layer.backward(dout)
            grads: GradDict = {}
            for name, (layer, pname) in self._var_index.items():
                grads[name] = layer.grads[pname]
            return loss, grads

    def apply_grads(
        self,
        grads: Mapping[str, np.ndarray],
        *,
        lr: float,
        coeff: float = 1.0,
    ) -> None:
        """In-place SGD step ``w -= lr * coeff * g`` for the given variables.

        ``grads`` may cover a subset of the variables (partial-gradient
        application). ``coeff`` carries the dynamic-batching weight and
        the ``1/n`` averaging factor of Eq. 7.
        """
        scale = lr * coeff
        for name, g in grads.items():
            layer, pname = self._var_index[name]
            w = layer.params[pname]
            if g.shape != w.shape:
                raise ValueError(f"gradient shape mismatch for {name}")
            # Allocation-free form of ``w -= scale * g``: the scaled
            # temporary keeps g's dtype (matching the historical
            # expression bit for bit) and lives in a cached scratch.
            dtype = g.dtype if g.dtype.kind == "f" else np.result_type(g.dtype, np.float64)
            s = self._scr(g.shape, dtype)
            np.multiply(g, scale, out=s)
            np.subtract(w, s, out=w)

    def apply_sparse_grads(
        self,
        sparse: Mapping[str, tuple[np.ndarray, np.ndarray]],
        *,
        lr: float,
        coeff: float = 1.0,
    ) -> None:
        """Apply (flat indices, values) sparse gradients per variable."""
        for name, (idx, vals) in sparse.items():
            layer, pname = self._var_index[name]
            w = layer.params[pname]
            flat = w.reshape(-1)
            np.subtract.at(flat, idx, (lr * coeff) * vals)

    # ------------------------------------------------------------------
    # Step-state snapshot (speculative execution support)
    # ------------------------------------------------------------------
    def save_step_state(self) -> list[tuple]:
        """Snapshot state a *training forward* mutates besides caches.

        A speculative ``loss_and_grads`` that is later discarded must
        leave the model exactly as it found it. Parameters are only
        written by explicit update calls (never by the step itself), so
        the snapshot covers the two stateful side effects: BatchNorm
        running statistics and Dropout's RNG stream position.
        """
        saved: list[tuple] = []
        for layer in self.layers:
            mean = getattr(layer, "running_mean", None)
            if isinstance(mean, np.ndarray):
                saved.append(("bn", layer, mean.copy(), layer.running_var.copy()))
            rng = getattr(layer, "rng", None)
            if isinstance(rng, np.random.Generator):
                saved.append(("rng", layer, rng.bit_generator.state))
        return saved

    def restore_step_state(self, saved: list[tuple]) -> None:
        """Undo a speculative step recorded by :meth:`save_step_state`.

        Arrays are restored in place (identity preserved); RNG streams
        are rewound to their saved position.
        """
        for entry in saved:
            if entry[0] == "bn":
                _, layer, mean, var = entry
                np.copyto(layer.running_mean, mean)
                np.copyto(layer.running_var, var)
            else:
                _, layer, state = entry
                layer.rng.bit_generator.state = state

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, x: np.ndarray, labels: np.ndarray, *, batch: int = 256
    ) -> tuple[float, float]:
        """Return (mean loss, accuracy) over a dataset, batched."""
        n = x.shape[0]
        if n == 0:
            raise ValueError("empty evaluation set")
        with _profile.scope("nn/evaluate"):
            total_loss = 0.0
            correct = 0
            for start in range(0, n, batch):
                xb = x[start:start + batch]
                yb = labels[start:start + batch]
                logits = self.forward(xb, training=False)
                loss, _ = softmax_cross_entropy(logits.copy(), yb)
                total_loss += loss * xb.shape[0]
                correct += int((logits.argmax(axis=1) == yb).sum())
            return total_loss / n, correct / n

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def save_weights(self, path: str) -> None:
        """Write all weight variables to an ``.npz`` checkpoint."""
        np.savez(path, **self.variables())

    def load_weights(self, path: str) -> None:
        """Load a checkpoint written by :meth:`save_weights`.

        The checkpoint must cover exactly this model's variables.
        """
        with np.load(path) as data:
            self.set_weights({name: data[name] for name in data.files})

    def summary(self) -> str:
        """A human-readable listing of every variable and its shape."""
        lines = [f"Model: {len(self.layers)} layers, {self.num_params()} params "
                 f"({self.nbytes() / 1e6:.2f} MB)"]
        for name in self.variable_names:
            v = self.get_variable(name)
            lines.append(f"  {name:40s} {str(v.shape):18s} {v.size}")
        return "\n".join(lines)
