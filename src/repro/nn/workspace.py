"""Reusable NN scratch buffers: the allocation-free hot path's switch.

Every layer owns a small buffer cache (see ``Layer._buf``) keyed by
``(site, shape, dtype)``. When the workspace is **enabled** (the
default), forward/backward intermediates — im2col columns, GEMM
outputs, activation masks, gradient arrays — are written into those
cached buffers, so a steady-state training step performs no large NumPy
allocations. When disabled, every request returns a fresh array and the
layers behave exactly like the historical allocating implementation;
the two paths are numerically identical (asserted by the hypothesis
suite in ``tests/nn/test_workspace_parity.py``).

Buffers are cached **per layer object**, never shared across layers or
models: a buffer's lifetime spans a forward→backward pair (Conv2D's
column matrix, Dense's cached input), so a shape-keyed global pool
would alias live data. Each model replica computes on one thread at a
time (the compute pool schedules at most one step per worker), which
makes per-layer caches thread-safe without locks.

Because gradient arrays are reused across iterations on this path,
anything that escapes the step must be copied — ``Worker.send_data``
copies dense payloads before they enter the (simulated or real)
network, and sparse payloads already materialize fresh arrays through
fancy indexing.

Set ``REPRO_NN_WORKSPACE=0`` to disable at import time, or use
:func:`set_enabled` / :func:`disabled` for scoped A/B comparisons (the
training-step benchmark measures both paths).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["enabled", "set_enabled", "disabled"]

_enabled: bool = os.environ.get("REPRO_NN_WORKSPACE", "1") != "0"


def enabled() -> bool:
    """Whether layers reuse their cached scratch buffers."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Turn buffer reuse on/off globally; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block on the allocating path (for A/B parity checks)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)
