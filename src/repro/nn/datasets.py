"""Synthetic image-classification datasets and worker sharding.

The paper trains on CIFAR-10 and an ImageNet-100 subset; neither is
available offline, so we substitute seeded synthetic datasets with the
properties the experiments exercise (see DESIGN.md §2):

* **learnable class structure** — samples are class-conditional Gaussian
  latents pushed through a fixed random two-layer nonlinear map into
  pixel space, so a linear model underfits but a small CNN/MLP separates
  classes well;
* **diminishing returns with batch size** — gradient noise scales as
  1/sqrt(batch), so very large global batches remove the SGD noise that
  aids generalization-style behaviour within a fixed epoch budget
  (driving Fig. 5's early-doubling penalty);
* **shardable** — data is partitioned across workers like the paper's
  "train a model over partitioned training data".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticImageDataset", "Shard", "MinibatchSampler"]


@dataclass(frozen=True)
class Shard:
    """One worker's partition of the training set."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError("x/y row counts differ")
        if self.x.shape[0] == 0:
            raise ValueError("empty shard")

    @property
    def size(self) -> int:
        return int(self.x.shape[0])


class SyntheticImageDataset:
    """Seeded synthetic dataset rendered as image tensors.

    Parameters
    ----------
    num_classes, train_size, test_size:
        Dataset shape. The "cifar-like" preset is 10 classes at
        ``(1, 24, 24)``; the "imagenet-like" preset is 100 classes at
        ``(3, 32, 32)``.
    image_shape:
        ``(channels, height, width)`` of the rendered tensors.
    latent_dim:
        Dimensionality of the class-prototype latent space.
    noise:
        Std-dev of the within-class latent noise; larger is harder.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        num_classes: int = 10,
        train_size: int = 6000,
        test_size: int = 1000,
        image_shape: tuple[int, int, int] = (1, 24, 24),
        latent_dim: int = 32,
        noise: float = 0.9,
    ):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if train_size < num_classes or test_size < num_classes:
            raise ValueError("dataset too small for the class count")
        self.num_classes = num_classes
        self.image_shape = image_shape
        self.latent_dim = latent_dim
        pixels = int(np.prod(image_shape))

        # Fixed random rendering map: latent -> hidden (tanh) -> pixels.
        hidden = max(latent_dim * 2, 48)
        self._proto = rng.normal(0.0, 1.0, size=(num_classes, latent_dim))
        self._w1 = rng.normal(0.0, 1.0 / np.sqrt(latent_dim), size=(latent_dim, hidden))
        self._w2 = rng.normal(0.0, 1.0 / np.sqrt(hidden), size=(hidden, pixels))
        self._noise = noise

        self.train_x, self.train_y = self._sample(rng, train_size)
        self.test_x, self.test_y = self._sample(rng, test_size)

    def _sample(
        self, rng: np.random.Generator, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, self.num_classes, size=n)
        latents = self._proto[labels] + rng.normal(
            0.0, self._noise, size=(n, self.latent_dim)
        )
        h = np.tanh(latents @ self._w1)
        pixels = np.tanh(h @ self._w2)
        x = pixels.reshape((n, *self.image_shape)).astype(np.float32)
        return x, labels.astype(np.int64)

    @property
    def train_size(self) -> int:
        return int(self.train_x.shape[0])

    # ------------------------------------------------------------------
    # Sharding (paper §2.1: workers train over partitioned data)
    # ------------------------------------------------------------------
    def shards(self, n_workers: int, *, mode: str = "iid") -> list[Shard]:
        """Partition the training set across ``n_workers``.

        ``iid`` deals samples round-robin (every worker sees every
        class); ``contiguous`` slices the array in order, a mild non-IID
        split.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if n_workers > self.train_size:
            raise ValueError("more workers than training samples")
        if mode == "iid":
            return [
                Shard(self.train_x[w::n_workers], self.train_y[w::n_workers])
                for w in range(n_workers)
            ]
        if mode == "contiguous":
            bounds = np.linspace(0, self.train_size, n_workers + 1, dtype=int)
            return [
                Shard(self.train_x[a:b], self.train_y[a:b])
                for a, b in zip(bounds[:-1], bounds[1:])
            ]
        raise ValueError(f"unknown shard mode {mode!r}")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def cifar_like(
        cls,
        rng: np.random.Generator,
        *,
        train_size: int = 6000,
        test_size: int = 1000,
        noise: float = 0.9,
        num_classes: int = 10,
    ) -> "SyntheticImageDataset":
        """The CIFAR-10 stand-in: 10 classes, single-channel 24×24."""
        return cls(
            rng,
            num_classes=num_classes,
            train_size=train_size,
            test_size=test_size,
            image_shape=(1, 24, 24),
            noise=noise,
        )

    @classmethod
    def imagenet_like(
        cls,
        rng: np.random.Generator,
        *,
        train_size: int = 8000,
        test_size: int = 1500,
        noise: float = 0.7,
        num_classes: int = 100,
    ) -> "SyntheticImageDataset":
        """The ImageNet-100 stand-in: 100 classes, RGB 32×32."""
        return cls(
            rng,
            num_classes=num_classes,
            train_size=train_size,
            test_size=test_size,
            image_shape=(3, 32, 32),
            latent_dim=64,
            noise=noise,
        )


class MinibatchSampler:
    """Draws minibatches of a *variable* size from one worker's shard.

    DLion changes the local batch size at runtime, so the sampler takes
    the batch size per call rather than at construction. Sampling is
    with-replacement uniform — the behaviour of an infinite shuffled
    stream, which keeps epoch accounting simple under varying LBS.
    """

    def __init__(self, shard: Shard, rng: np.random.Generator):
        self.shard = shard
        self.rng = rng
        self.samples_drawn = 0

    def draw(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Sample a minibatch of the requested size from the shard."""
        xb, yb = self.draw_uncounted(batch_size)
        self.commit(batch_size)
        return xb, yb

    def draw_uncounted(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Sample a minibatch without bumping ``samples_drawn``.

        Used by the speculative compute pool: the RNG stream advances at
        submission time (so one draw per iteration keeps the per-worker
        stream order identical to serial execution) while the epoch
        accounting is deferred to :meth:`commit` at the simulated
        completion instant.
        """
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        idx = self.rng.integers(0, self.shard.size, size=batch_size)
        return self.shard.x[idx], self.shard.y[idx]

    def commit(self, batch_size: int) -> None:
        """Count a previously drawn batch toward epoch progress."""
        self.samples_drawn += batch_size
