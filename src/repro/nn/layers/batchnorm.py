"""Batch normalization (per-channel for 4-D inputs, per-feature for 2-D)."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import ones, zeros
from repro.nn.layers.base import Layer

__all__ = ["BatchNorm"]


class BatchNorm(Layer):
    """Batch norm with running statistics for inference.

    ``gamma``/``beta`` are trainable weight variables (and therefore take
    part in gradient exchange); running mean/var are local-only state,
    like TensorFlow's non-trainable variables.
    """

    def __init__(self, dim: int, *, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        if not 0.0 < momentum < 1.0:
            raise ValueError("momentum must be in (0,1)")
        self.dim = dim
        self.momentum = momentum
        self.eps = eps
        self.params = {"gamma": ones((dim,)), "beta": zeros((dim,))}
        self.running_mean = np.zeros(dim, dtype=np.float32)
        self.running_var = np.ones(dim, dtype=np.float32)
        self._cache: tuple | None = None

    @staticmethod
    def _axes(x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"BatchNorm supports 2-D or 4-D inputs, got {x.ndim}-D")

    def _bshape(self, x: np.ndarray) -> tuple[int, ...]:
        return (1, self.dim) if x.ndim == 2 else (1, self.dim, 1, 1)

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        axes = self._axes(x)
        bs = self._bshape(x)
        gamma = self.params["gamma"].reshape(bs)
        beta = self.params["beta"].reshape(bs)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean = m * self.running_mean + (1 - m) * mean.astype(np.float32)
            self.running_var = m * self.running_var + (1 - m) * var.astype(np.float32)
            inv_std = 1.0 / np.sqrt(var + self.eps)
            xhat = (x - mean.reshape(bs)) * inv_std.reshape(bs)
            self._cache = (xhat, inv_std, axes, bs, x.shape)
            return gamma * xhat + beta
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        xhat = (x - self.running_mean.reshape(bs)) * inv_std.reshape(bs)
        return gamma * xhat + beta

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        xhat, inv_std, axes, bs, x_shape = self._cache
        self.grads["gamma"] = (dout * xhat).sum(axis=axes)
        self.grads["beta"] = dout.sum(axis=axes)
        gamma = self.params["gamma"].reshape(bs)
        dxhat = dout * gamma
        # Standard batch-norm backward, fused form.
        term = (
            dxhat
            - dxhat.mean(axis=axes).reshape(bs)
            - xhat * (dxhat * xhat).mean(axis=axes).reshape(bs)
        )
        return term * inv_std.reshape(bs)
