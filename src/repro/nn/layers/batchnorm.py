"""Batch normalization (per-channel for 4-D inputs, per-feature for 2-D)."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import ones, zeros
from repro.nn.layers.base import Layer

__all__ = ["BatchNorm"]


class BatchNorm(Layer):
    """Batch norm with running statistics for inference.

    ``gamma``/``beta`` are trainable weight variables (and therefore take
    part in gradient exchange); running mean/var are local-only state,
    like TensorFlow's non-trainable variables.

    The running statistics are updated **in place** during training
    forward passes so the arrays keep their identity — the compute
    pool snapshots and restores them around speculative steps (see
    ``Model.save_step_state``). Large per-step intermediates (``xhat``
    and the gradient terms) live in cached workspace buffers.
    """

    def __init__(self, dim: int, *, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        if not 0.0 < momentum < 1.0:
            raise ValueError("momentum must be in (0,1)")
        self.dim = dim
        self.momentum = momentum
        self.eps = eps
        self.params = {"gamma": ones((dim,)), "beta": zeros((dim,))}
        self.running_mean = np.zeros(dim, dtype=np.float32)
        self.running_var = np.ones(dim, dtype=np.float32)
        self._cache: tuple | None = None

    @staticmethod
    def _axes(x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"BatchNorm supports 2-D or 4-D inputs, got {x.ndim}-D")

    def _bshape(self, x: np.ndarray) -> tuple[int, ...]:
        return (1, self.dim) if x.ndim == 2 else (1, self.dim, 1, 1)

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        axes = self._axes(x)
        bs = self._bshape(x)
        gamma = self.params["gamma"].reshape(bs)
        beta = self.params["beta"].reshape(bs)
        out = self._buf("out", x.shape, x.dtype if x.dtype.kind == "f" else np.float64)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean *= m
            self.running_mean += (1 - m) * mean.astype(np.float32)
            self.running_var *= m
            self.running_var += (1 - m) * var.astype(np.float32)
            inv_std = 1.0 / np.sqrt(var + self.eps)
            xhat = self._buf("xhat", x.shape, out.dtype)
            np.subtract(x, mean.reshape(bs), out=xhat)
            xhat *= inv_std.reshape(bs)
            self._cache = (xhat, inv_std, axes, bs, x.shape)
            np.multiply(gamma, xhat, out=out)
            out += beta
            return out
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        np.subtract(x, self.running_mean.reshape(bs), out=out)
        out *= inv_std.reshape(bs)
        out *= gamma
        out += beta
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        xhat, inv_std, axes, bs, x_shape = self._cache
        ggamma = self._buf("ggamma", (self.dim,), dout.dtype)
        scratch = self._buf("prod", dout.shape, dout.dtype)
        np.multiply(dout, xhat, out=scratch)
        np.sum(scratch, axis=axes, out=ggamma)
        self.grads["gamma"] = ggamma
        gbeta = self._buf("gbeta", (self.dim,), dout.dtype)
        np.sum(dout, axis=axes, out=gbeta)
        self.grads["beta"] = gbeta
        gamma = self.params["gamma"].reshape(bs)
        dxhat = self._buf("dxhat", dout.shape, np.result_type(dout.dtype, gamma.dtype))
        np.multiply(dout, gamma, out=dxhat)
        # Standard batch-norm backward, fused form. The evaluation
        # order matches the allocating expression
        # ``(dxhat - dxhat.mean() - xhat * (dxhat*xhat).mean()) * inv_std``
        # left to right, so both paths are bitwise identical.
        term = self._buf("term", dout.shape, dxhat.dtype)
        np.multiply(dxhat, xhat, out=term)
        mean_dxhat_xhat = term.mean(axis=axes)
        np.subtract(dxhat, dxhat.mean(axis=axes).reshape(bs), out=term)
        np.multiply(xhat, mean_dxhat_xhat.reshape(bs), out=scratch)
        term -= scratch
        term *= inv_std.reshape(bs)
        return term
