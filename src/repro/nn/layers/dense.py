"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, he_normal, zeros
from repro.nn.layers.base import Layer

__all__ = ["Dense"]


class Dense(Layer):
    """Affine layer ``y = x @ W + b`` for 2-D inputs ``(batch, in_dim)``.

    On the workspace path the output, the gradient arrays, and the
    input gradient are written into cached per-layer buffers (GEMMs run
    with ``out=``), so steady-state steps allocate nothing.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        *,
        init: str = "he",
    ):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("dense dims must be positive")
        if init == "he":
            w = he_normal(rng, (in_dim, out_dim), fan_in=in_dim)
        elif init == "glorot":
            w = glorot_uniform(rng, (in_dim, out_dim), fan_in=in_dim, fan_out=out_dim)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.params = {"W": w, "b": zeros((out_dim,))}
        self.in_dim = in_dim
        self.out_dim = out_dim
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_dim:
            raise ValueError(f"Dense expected (batch,{self.in_dim}), got {x.shape}")
        self._x = x if training else None
        w = self.params["W"]
        dtype = np.result_type(x.dtype, w.dtype)
        out = self._buf("fwd", (x.shape[0], self.out_dim), dtype)
        np.matmul(x, w, out=out)
        out += self.params["b"]
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called without a training forward pass")
        x = self._x
        w = self.params["W"]
        gw = self._buf("gW", w.shape, np.result_type(x.dtype, dout.dtype))
        np.matmul(x.T, dout, out=gw)
        self.grads["W"] = gw
        gb = self._buf("gb", (self.out_dim,), dout.dtype)
        np.sum(dout, axis=0, out=gb)
        self.grads["b"] = gb
        dx = self._buf("dx", x.shape, np.result_type(dout.dtype, w.dtype))
        np.matmul(dout, w.T, out=dx)
        return dx
