"""Neural-network layers with manual backpropagation."""

from repro.nn.layers.base import Layer
from repro.nn.layers.dense import Dense
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.depthwise import DepthwiseConv2D
from repro.nn.layers.pool import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.activations import LeakyReLU, ReLU, ReLU6
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.dropout import Dropout

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "BatchNorm",
    "Flatten",
    "Dropout",
]
