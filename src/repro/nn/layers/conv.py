"""2-D convolution via im2col.

The im2col transform turns convolution into one large GEMM, the standard
way to get vectorized-NumPy performance (see the hpc-parallel guide's
"vectorize for loops" rule). Data layout is NCHW throughout.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, zeros
from repro.nn.layers.base import Layer

__all__ = ["Conv2D", "im2col", "col2im"]


def _out_size(size: int, k: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - k) // stride + 1


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``x`` (N, C, H, W) into columns (N*OH*OW, C*kh*kw).

    Returns the column matrix and the output spatial size ``(OH, OW)``.
    """
    n, c, h, w = x.shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    if oh <= 0 or ow <= 0:
        raise ValueError(f"kernel {kh}x{kw} too large for input {h}x{w} (pad={pad})")
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")

    # Strided sliding-window view: (N, C, kh, kw, OH, OW) with no copy.
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    cols = view.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold columns back into an image, accumulating overlaps (im2col adjoint)."""
    n, c, h, w = x_shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            out[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j, :, :]
    if pad > 0:
        return out[:, :, pad:-pad, pad:-pad]
    return out


class Conv2D(Layer):
    """Standard convolution, weights ``(out_c, in_c, kh, kw)``."""

    def __init__(
        self,
        in_c: int,
        out_c: int,
        kernel: int,
        rng: np.random.Generator,
        *,
        stride: int = 1,
        pad: int | None = None,
    ):
        super().__init__()
        if in_c <= 0 or out_c <= 0 or kernel <= 0 or stride <= 0:
            raise ValueError("conv dimensions must be positive")
        self.in_c, self.out_c, self.k, self.stride = in_c, out_c, kernel, stride
        self.pad = (kernel // 2) if pad is None else pad
        fan_in = in_c * kernel * kernel
        self.params = {
            "W": he_normal(rng, (out_c, in_c, kernel, kernel), fan_in=fan_in),
            "b": zeros((out_c,)),
        }
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_c:
            raise ValueError(f"Conv2D expected (N,{self.in_c},H,W), got {x.shape}")
        n = x.shape[0]
        cols, (oh, ow) = im2col(x, self.k, self.k, self.stride, self.pad)
        wmat = self.params["W"].reshape(self.out_c, -1)  # (out_c, in_c*k*k)
        out = cols @ wmat.T + self.params["b"]
        out = out.reshape(n, oh, ow, self.out_c).transpose(0, 3, 1, 2)
        self._cache = (x.shape, cols) if training else None
        return np.ascontiguousarray(out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        x_shape, cols = self._cache
        n, _, oh, ow = dout.shape
        dflat = dout.transpose(0, 2, 3, 1).reshape(n * oh * ow, self.out_c)
        wmat = self.params["W"].reshape(self.out_c, -1)
        self.grads["W"] = (dflat.T @ cols).reshape(self.params["W"].shape)
        self.grads["b"] = dflat.sum(axis=0)
        dcols = dflat @ wmat
        return col2im(dcols, x_shape, self.k, self.k, self.stride, self.pad)
