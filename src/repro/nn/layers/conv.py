"""2-D convolution via im2col.

The im2col transform turns convolution into one large GEMM, the standard
way to get vectorized-NumPy performance (see the hpc-parallel guide's
"vectorize for loops" rule). Data layout is NCHW throughout.

The layer's hot path is allocation-free in steady state: the padded
input, the column matrix, the GEMM output, and every backward
intermediate live in per-layer cached buffers (``Layer._buf``), with
the im2col gather expressed as one strided-view ``copyto`` into a
preallocated 6-D block whose flat 2-D reshape is the GEMM operand.
The module-level :func:`im2col` / :func:`col2im` helpers keep their
original allocating signatures for tests and external callers.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, zeros
from repro.nn.layers.base import Layer

__all__ = ["Conv2D", "im2col", "col2im"]


def _out_size(size: int, k: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - k) // stride + 1


def _window_view(x: np.ndarray, kh: int, kw: int, stride: int, oh: int, ow: int):
    """Read-only sliding-window view (N, C, kh, kw, OH, OW) — no copy."""
    n, c = x.shape[:2]
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``x`` (N, C, H, W) into columns (N*OH*OW, C*kh*kw).

    Returns the column matrix and the output spatial size ``(OH, OW)``.
    """
    n, c, h, w = x.shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    if oh <= 0 or ow <= 0:
        raise ValueError(f"kernel {kh}x{kw} too large for input {h}x{w} (pad={pad})")
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    view = _window_view(x, kh, kw, stride, oh, ow)
    cols = view.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Fold columns back into an image, accumulating overlaps (im2col adjoint).

    ``out``, when given, must be a zeroed ``(N, C, H+2p, W+2p)`` buffer;
    the unpadded result is returned (a view into ``out`` when padded).
    """
    n, c, h, w = x_shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    if out is None:
        out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            out[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j, :, :]
    if pad > 0:
        return out[:, :, pad:-pad, pad:-pad]
    return out


class Conv2D(Layer):
    """Standard convolution, weights ``(out_c, in_c, kh, kw)``."""

    def __init__(
        self,
        in_c: int,
        out_c: int,
        kernel: int,
        rng: np.random.Generator,
        *,
        stride: int = 1,
        pad: int | None = None,
    ):
        super().__init__()
        if in_c <= 0 or out_c <= 0 or kernel <= 0 or stride <= 0:
            raise ValueError("conv dimensions must be positive")
        self.in_c, self.out_c, self.k, self.stride = in_c, out_c, kernel, stride
        self.pad = (kernel // 2) if pad is None else pad
        fan_in = in_c * kernel * kernel
        self.params = {
            "W": he_normal(rng, (out_c, in_c, kernel, kernel), fan_in=fan_in),
            "b": zeros((out_c,)),
        }
        self._cache: tuple | None = None

    def _cols(self, x: np.ndarray) -> tuple[np.ndarray, int, int]:
        """im2col into a cached buffer; returns (cols, OH, OW)."""
        n, c, h, w = x.shape
        k, s, p = self.k, self.stride, self.pad
        oh = _out_size(h, k, s, p)
        ow = _out_size(w, k, s, p)
        if oh <= 0 or ow <= 0:
            raise ValueError(f"kernel {k}x{k} too large for input {h}x{w} (pad={p})")
        if p > 0:
            xp = self._buf("xpad", (n, c, h + 2 * p, w + 2 * p), x.dtype)
            xp[...] = 0.0
            xp[:, :, p:-p, p:-p] = x
            x = xp
        view = _window_view(x, k, k, s, oh, ow)
        cols6 = self._buf("cols6", (n, oh, ow, c, k, k), x.dtype)
        np.copyto(cols6, view.transpose(0, 4, 5, 1, 2, 3))
        return cols6.reshape(n * oh * ow, c * k * k), oh, ow

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_c:
            raise ValueError(f"Conv2D expected (N,{self.in_c},H,W), got {x.shape}")
        n = x.shape[0]
        cols, oh, ow = self._cols(x)
        wmat = self.params["W"].reshape(self.out_c, -1)  # (out_c, in_c*k*k)
        dtype = np.result_type(cols.dtype, wmat.dtype)
        outf = self._buf("outf", (n * oh * ow, self.out_c), dtype)
        np.matmul(cols, wmat.T, out=outf)
        outf += self.params["b"]
        out = self._buf("out", (n, self.out_c, oh, ow), dtype)
        np.copyto(out, outf.reshape(n, oh, ow, self.out_c).transpose(0, 3, 1, 2))
        self._cache = (x.shape, cols) if training else None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        x_shape, cols = self._cache
        n, _, oh, ow = dout.shape
        k, s, p = self.k, self.stride, self.pad
        dflat = self._buf("dflat", (n * oh * ow, self.out_c), dout.dtype)
        np.copyto(
            dflat.reshape(n, oh, ow, self.out_c), dout.transpose(0, 2, 3, 1)
        )
        w = self.params["W"]
        wmat = w.reshape(self.out_c, -1)
        gw = self._buf("gW", w.shape, np.result_type(dflat.dtype, cols.dtype))
        np.matmul(dflat.T, cols, out=gw.reshape(self.out_c, -1))
        self.grads["W"] = gw
        gb = self._buf("gb", (self.out_c,), dflat.dtype)
        np.sum(dflat, axis=0, out=gb)
        self.grads["b"] = gb
        dtype = np.result_type(dflat.dtype, wmat.dtype)
        dcols = self._buf("dcols", cols.shape, dtype)
        np.matmul(dflat, wmat, out=dcols)
        h, wdim = x_shape[2], x_shape[3]
        acc = self._buf("c2i", (n, self.in_c, h + 2 * p, wdim + 2 * p), dtype)
        acc[...] = 0.0
        dx_padded = col2im(dcols, x_shape, k, k, s, p, out=acc)
        if p == 0:
            return dx_padded
        dx = self._buf("dx", x_shape, dtype)
        np.copyto(dx, dx_padded)
        return dx
