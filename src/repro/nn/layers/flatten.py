"""Flatten layer: (N, ...) -> (N, prod(...))."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    """Reshape (N, ...) image tensors to (N, features)."""
    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        self._shape = x.shape if training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called without a training forward pass")
        return dout.reshape(self._shape)
