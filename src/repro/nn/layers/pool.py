"""Pooling layers: max-pool (Cipher CNN) and global average pool (MobileNet)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Layer):
    """Non-overlapping max pooling with window = stride = ``size``.

    Input spatial dims must be divisible by ``size`` (the models in this
    repo are constructed so that they are), which lets the forward pass
    be a pure reshape + reduce — no im2col needed.
    """

    def __init__(self, size: int = 2):
        super().__init__()
        if size <= 1:
            raise ValueError("pool size must be >= 2")
        self.size = size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        xr = x.reshape(n, c, h // s, s, w // s, s)
        out = xr.max(axis=(3, 5))
        if training:
            # Mask of the (first) argmax within each window, used as the
            # gradient router in backward.
            mask = xr == out[:, :, :, None, :, None]
            # Break ties toward a single element so gradients are not
            # double-counted: keep only the first True per window. The
            # window axes (3, 5) are brought together before flattening.
            flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // s, w // s, s * s)
            first = flat.argmax(axis=-1)
            mask = np.zeros_like(flat, dtype=bool)
            np.put_along_axis(mask, first[..., None], True, axis=-1)
            self._cache = (x.shape, mask)
        else:
            self._cache = None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        x_shape, mask = self._cache
        n, c, h, w = x_shape
        s = self.size
        dx = mask * dout[:, :, :, :, None]
        return (
            dx.reshape(n, c, h // s, w // s, s, s)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )


class AvgPool2D(Layer):
    """Non-overlapping average pooling with window = stride = ``size``."""

    def __init__(self, size: int = 2):
        super().__init__()
        if size <= 1:
            raise ValueError("pool size must be >= 2")
        self.size = size
        self._shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        self._shape = x.shape if training else None
        return x.reshape(n, c, h // s, s, w // s, s).mean(axis=(3, 5))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called without a training forward pass")
        n, c, h, w = self._shape
        s = self.size
        scaled = dout / (s * s)
        return (
            np.broadcast_to(
                scaled[:, :, :, None, :, None], (n, c, h // s, s, w // s, s)
            ).reshape(n, c, h, w)
        )


class GlobalAvgPool2D(Layer):
    """Average over spatial dims: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"GlobalAvgPool2D expected 4-D input, got {x.shape}")
        self._shape = x.shape if training else None
        return x.mean(axis=(2, 3))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called without a training forward pass")
        n, c, h, w = self._shape
        return np.broadcast_to(dout[:, :, None, None], (n, c, h, w)) / (h * w)
