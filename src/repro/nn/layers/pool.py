"""Pooling layers: max-pool (Cipher CNN) and global average pool (MobileNet)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Layer):
    """Non-overlapping max pooling with window = stride = ``size``.

    Input spatial dims must be divisible by ``size`` (the models in this
    repo are constructed so that they are), which lets the forward pass
    be a pure reshape + reduce — no im2col needed. All intermediates
    (the pooled output, the argmax router mask, the routed gradient)
    live in cached per-layer buffers on the workspace path.
    """

    def __init__(self, size: int = 2):
        super().__init__()
        if size <= 1:
            raise ValueError("pool size must be >= 2")
        self.size = size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        xr = x.reshape(n, c, h // s, s, w // s, s)
        out = self._buf("out", (n, c, h // s, w // s), x.dtype)
        xr.max(axis=(3, 5), out=out)
        if training:
            # Route each window's gradient to the (first) argmax. The
            # window axes (3, 5) are brought together before flattening
            # so ties break toward a single element and gradients are
            # never double-counted.
            flat = self._buf("flat", (n, c, h // s, w // s, s * s), x.dtype)
            np.copyto(
                flat.reshape(n, c, h // s, w // s, s, s),
                xr.transpose(0, 1, 2, 4, 3, 5),
            )
            first = flat.argmax(axis=-1)
            mask = self._buf("mask", flat.shape, bool)
            mask[...] = False
            np.put_along_axis(mask, first[..., None], True, axis=-1)
            self._cache = (x.shape, mask)
        else:
            self._cache = None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        x_shape, mask = self._cache
        n, c, h, w = x_shape
        s = self.size
        routed = self._buf("routed", mask.shape, dout.dtype)
        np.multiply(mask, dout[:, :, :, :, None], out=routed)
        dx = self._buf("dx", x_shape, dout.dtype)
        np.copyto(
            dx.reshape(n, c, h // s, s, w // s, s),
            routed.reshape(n, c, h // s, w // s, s, s).transpose(0, 1, 2, 4, 3, 5),
        )
        return dx


class AvgPool2D(Layer):
    """Non-overlapping average pooling with window = stride = ``size``."""

    def __init__(self, size: int = 2):
        super().__init__()
        if size <= 1:
            raise ValueError("pool size must be >= 2")
        self.size = size
        self._shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        self._shape = x.shape if training else None
        dtype = x.dtype if x.dtype.kind == "f" else np.float64
        out = self._buf("out", (n, c, h // s, w // s), dtype)
        x.reshape(n, c, h // s, s, w // s, s).mean(axis=(3, 5), out=out)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called without a training forward pass")
        n, c, h, w = self._shape
        s = self.size
        scaled = self._buf("scaled", dout.shape, dout.dtype)
        np.divide(dout, s * s, out=scaled)
        dx = self._buf("dx", (n, c, h, w), dout.dtype)
        np.copyto(
            dx.reshape(n, c, h // s, s, w // s, s),
            scaled[:, :, :, None, :, None],
        )
        return dx


class GlobalAvgPool2D(Layer):
    """Average over spatial dims: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"GlobalAvgPool2D expected 4-D input, got {x.shape}")
        self._shape = x.shape if training else None
        out = self._buf("out", x.shape[:2], x.dtype if x.dtype.kind == "f" else np.float64)
        x.mean(axis=(2, 3), out=out)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called without a training forward pass")
        n, c, h, w = self._shape
        dx = self._buf("dx", (n, c, h, w), dout.dtype)
        np.divide(dout[:, :, None, None], h * w, out=dx)
        return dx
