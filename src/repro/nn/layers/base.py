"""Layer protocol.

Layers hold their parameters and gradients in ``params`` / ``grads``
dictionaries keyed by short names ("W", "b", ...). The model namespaces
these to globally unique *variable names* — the unit of gradient exchange
throughout the distributed layer, matching the paper's "granularity of
data transmission is ... individual weight variables" (§4.2).
"""

from __future__ import annotations

import numpy as np

from repro.nn import workspace

__all__ = ["Layer"]


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`; stateful
    layers populate ``self.params`` at construction and write matching
    entries into ``self.grads`` during :meth:`backward`.
    """

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.name: str = type(self).__name__
        # Scratch-buffer cache for the allocation-free hot path, keyed
        # by (site, shape, dtype). Owned by this layer object only —
        # see repro.nn.workspace for the aliasing rules.
        self._ws: dict[tuple, np.ndarray] = {}

    def _buf(self, site: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """An uninitialised scratch array, cached when the workspace is on.

        The contents are whatever the previous step left behind; callers
        must fully overwrite (or explicitly zero) the buffer. Distinct
        ``site`` names within one layer never alias.
        """
        if not workspace.enabled():
            return np.empty(shape, dtype=dtype)
        key = (site, shape, np.dtype(dtype))
        buf = self._ws.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._ws[key] = buf
        return buf

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        """Compute the layer output; caches for backward when training."""
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Given dL/d(output), set ``self.grads`` and return dL/d(input)."""
        raise NotImplementedError

    def num_params(self) -> int:
        """Total trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(params={self.num_params()})"
