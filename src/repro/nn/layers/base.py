"""Layer protocol.

Layers hold their parameters and gradients in ``params`` / ``grads``
dictionaries keyed by short names ("W", "b", ...). The model namespaces
these to globally unique *variable names* — the unit of gradient exchange
throughout the distributed layer, matching the paper's "granularity of
data transmission is ... individual weight variables" (§4.2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Layer"]


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`; stateful
    layers populate ``self.params`` at construction and write matching
    entries into ``self.grads`` during :meth:`backward`.
    """

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.name: str = type(self).__name__

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        """Compute the layer output; caches for backward when training."""
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Given dL/d(output), set ``self.grads`` and return dL/d(input)."""
        raise NotImplementedError

    def num_params(self) -> int:
        """Total trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(params={self.num_params()})"
