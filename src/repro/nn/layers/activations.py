"""Elementwise activations."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["ReLU", "ReLU6", "LeakyReLU"]


class ReLU(Layer):
    """max(x, 0)."""
    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return np.where(mask, x, 0.0)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training forward pass")
        return dout * self._mask


class LeakyReLU(Layer):
    """max(x, alpha * x) with 0 < alpha < 1."""

    def __init__(self, alpha: float = 0.01):
        super().__init__()
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return np.where(mask, x, self.alpha * x)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training forward pass")
        return np.where(self._mask, dout, self.alpha * dout)


class ReLU6(Layer):
    """min(max(x, 0), 6) — MobileNet's activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        mask = (x > 0) & (x < 6.0)
        self._mask = mask if training else None
        return np.clip(x, 0.0, 6.0)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training forward pass")
        return dout * self._mask
