"""Elementwise activations."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["ReLU", "ReLU6", "LeakyReLU"]


class ReLU(Layer):
    """max(x, 0)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if training:
            mask = self._buf("mask", x.shape, bool)
            np.greater(x, 0, out=mask)
            self._mask = mask
        else:
            self._mask = None
        out = self._buf("out", x.shape, x.dtype)
        np.maximum(x, 0.0, out=out)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training forward pass")
        dx = self._buf("dx", dout.shape, dout.dtype)
        np.multiply(dout, self._mask, out=dx)
        return dx


class LeakyReLU(Layer):
    """max(x, alpha * x) with 0 < alpha < 1."""

    def __init__(self, alpha: float = 0.01):
        super().__init__()
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        mask = self._buf("mask", x.shape, bool)
        np.greater(x, 0, out=mask)
        self._mask = mask if training else None
        out = self._buf("out", x.shape, x.dtype)
        np.multiply(x, self.alpha, out=out)
        np.copyto(out, x, where=mask)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training forward pass")
        dx = self._buf("dx", dout.shape, dout.dtype)
        np.multiply(dout, self.alpha, out=dx)
        np.copyto(dx, dout, where=self._mask)
        return dx


class ReLU6(Layer):
    """min(max(x, 0), 6) — MobileNet's activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if training:
            mask = self._buf("mask", x.shape, bool)
            lower = self._buf("mask_lo", x.shape, bool)
            np.less(x, 6.0, out=mask)
            np.greater(x, 0, out=lower)
            mask &= lower
            self._mask = mask
        else:
            self._mask = None
        out = self._buf("out", x.shape, x.dtype)
        np.clip(x, 0.0, 6.0, out=out)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training forward pass")
        dx = self._buf("dx", dout.shape, dout.dtype)
        np.multiply(dout, self._mask, out=dx)
        return dx
