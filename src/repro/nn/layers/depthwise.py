"""Depthwise convolution — the MobileNet building block.

A depthwise conv applies one ``k×k`` filter per input channel (no
cross-channel mixing); MobileNet pairs it with a 1×1 pointwise ``Conv2D``.
Implemented with the same strided-view unfold as ``Conv2D`` but with the
channel axis kept separate so each channel sees only its own filter.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, zeros
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import _out_size

__all__ = ["DepthwiseConv2D"]


class DepthwiseConv2D(Layer):
    """Per-channel convolution, weights ``(C, kh, kw)``."""

    def __init__(
        self,
        channels: int,
        kernel: int,
        rng: np.random.Generator,
        *,
        stride: int = 1,
        pad: int | None = None,
    ):
        super().__init__()
        if channels <= 0 or kernel <= 0 or stride <= 0:
            raise ValueError("depthwise conv dimensions must be positive")
        self.c, self.k, self.stride = channels, kernel, stride
        self.pad = (kernel // 2) if pad is None else pad
        self.params = {
            "W": he_normal(rng, (channels, kernel, kernel), fan_in=kernel * kernel),
            "b": zeros((channels,)),
        }
        self._cache: tuple | None = None

    def _unfold(self, x: np.ndarray) -> tuple[np.ndarray, int, int]:
        """Return a window view (N, C, OH, OW, kh, kw) of the padded input."""
        n, c, h, w = x.shape
        oh = _out_size(h, self.k, self.stride, self.pad)
        ow = _out_size(w, self.k, self.stride, self.pad)
        if self.pad > 0:
            x = np.pad(
                x, ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad))
            )
        sn, sc, sh, sw = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, oh, ow, self.k, self.k),
            strides=(sn, sc, sh * self.stride, sw * self.stride, sh, sw),
            writeable=False,
        )
        return view, oh, ow

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.c:
            raise ValueError(f"DepthwiseConv2D expected (N,{self.c},H,W), got {x.shape}")
        view, oh, ow = self._unfold(x)
        # einsum over the window dims: out[n,c,i,j] = sum_kl view[n,c,i,j,k,l] W[c,k,l]
        out = np.einsum("ncijkl,ckl->ncij", view, self.params["W"], optimize=True)
        out += self.params["b"][None, :, None, None]
        self._cache = (x.shape, np.ascontiguousarray(view)) if training else None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        x_shape, view = self._cache
        self.grads["W"] = np.einsum("ncijkl,ncij->ckl", view, dout, optimize=True)
        self.grads["b"] = dout.sum(axis=(0, 2, 3))

        # dL/dx: scatter dout * W back over the windows.
        n, c, h, w = x_shape
        hp, wp = h + 2 * self.pad, w + 2 * self.pad
        dx = np.zeros((n, c, hp, wp), dtype=dout.dtype)
        oh, ow = dout.shape[2], dout.shape[3]
        wgt = self.params["W"]
        for i in range(self.k):
            i_max = i + self.stride * oh
            for j in range(self.k):
                j_max = j + self.stride * ow
                dx[:, :, i:i_max:self.stride, j:j_max:self.stride] += (
                    dout * wgt[None, :, i, j, None, None]
                )
        if self.pad > 0:
            dx = dx[:, :, self.pad:-self.pad, self.pad:-self.pad]
        return dx
