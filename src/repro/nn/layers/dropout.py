"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["Dropout"]


class Dropout(Layer):
    """Drops activations with probability ``rate`` during training.

    Uses inverted scaling so inference is a no-op. The generator is
    injected for reproducibility.
    """

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0,1)")
        self.rate = rate
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep) / keep
        self._mask = mask
        return x * mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask
